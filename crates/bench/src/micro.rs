//! Criterion microbenchmark groups for the hot components: metadata
//! lookups, quota reservations, the copy pool, the CRC32C codec, the
//! discrete-event engine itself — and the telemetry overhead of the
//! instrumented read path (target: ≤ 5% over the disabled baseline).
//!
//! The groups live in the library (rather than only in
//! `benches/microbench.rs`) so the `bench` regression tool can rerun
//! them in-process and diff the results against a committed
//! `BENCH_read_path.json` baseline.

use std::sync::Arc;

use criterion::{BatchSize, Criterion, Throughput};
use monarch_core::config::{AdmissionKind, PolicyKind};
use monarch_core::driver::MemDriver;
use monarch_core::hierarchy::{Quota, StorageHierarchy};
use monarch_core::metadata::MetadataContainer;
use monarch_core::policy::PolicyEngine;
use monarch_core::pool::ThreadPool;
use monarch_core::prefetch::{AccessPlan, PrefetchConfig};
use monarch_core::{Monarch, MonarchBuilder, StorageDriver, TelemetryConfig};
use simfs::clock::SimTime;
use simfs::psdev::{Kind, PsDevice};
use simfs::EventQueue;
use tfrecord::crc32c::crc32c;
use tfrecord::{RecordReader, RecordWriter};

/// Metadata-container lookup throughput over a 10k-file namespace.
pub fn bench_metadata(c: &mut Criterion) {
    let meta = MetadataContainer::default();
    for i in 0..10_000 {
        meta.register(&format!("train-{i:05}.tfrecord"), 128 << 20, 1);
    }
    let mut g = c.benchmark_group("metadata");
    g.throughput(Throughput::Elements(1));
    g.bench_function("lookup_for_read", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let name = format!("train-{:05}.tfrecord", i % 10_000);
            i = i.wrapping_add(7919);
            meta.lookup_for_read(&name).unwrap()
        });
    });
    g.finish();
}

/// Quota reserve/release round trip (two atomic CAS loops).
pub fn bench_quota(c: &mut Criterion) {
    let mut g = c.benchmark_group("quota");
    g.throughput(Throughput::Elements(1));
    g.bench_function("reserve_release", |b| {
        let q = Quota::new(u64::MAX / 2);
        b.iter(|| {
            assert!(q.try_reserve(4096));
            q.release(4096);
        });
    });
    g.finish();
}

/// First-fit placement decision against a two-tier hierarchy.
pub fn bench_placement(c: &mut Criterion) {
    let hierarchy = StorageHierarchy::new(vec![
        (
            "ssd".into(),
            Arc::new(MemDriver::new("ssd")) as Arc<dyn StorageDriver>,
            Some(u64::MAX / 2),
        ),
        (
            "pfs".into(),
            Arc::new(MemDriver::new("pfs")) as Arc<dyn StorageDriver>,
            None,
        ),
    ])
    .unwrap();
    let policy = PolicyEngine::from_kind(PolicyKind::FirstFit, AdmissionKind::AdmitAll);
    let mut g = c.benchmark_group("placement");
    g.throughput(Throughput::Elements(1));
    g.bench_function("first_fit_decision", |b| {
        b.iter(|| policy.place(&hierarchy, "f", 4096).unwrap().unwrap());
    });
    g.finish();
}

/// Copy-pool submit/drain cycle for a burst of no-op jobs.
pub fn bench_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("copy_pool");
    g.throughput(Throughput::Elements(256));
    g.bench_function("submit_drain_256", |b| {
        let pool = ThreadPool::new(6);
        b.iter(|| {
            for _ in 0..256 {
                pool.submit(Box::new(|| std::hint::black_box(())));
            }
            pool.wait_idle();
        });
    });
    g.finish();
}

/// A warmed-up in-memory Monarch: one 256 KiB file already placed on the
/// local tier, so `read` exercises the steady-state hot path.
fn warmed_monarch(tcfg: TelemetryConfig, pf: PrefetchConfig) -> Monarch {
    let pfs = Arc::new(MemDriver::new("pfs"));
    pfs.write_full("f", &vec![0xa5u8; 256 << 10]).unwrap();
    let hierarchy = StorageHierarchy::new(vec![
        (
            "ssd".into(),
            Arc::new(MemDriver::new("ssd")) as Arc<dyn StorageDriver>,
            Some(1 << 30),
        ),
        ("pfs".into(), pfs as Arc<dyn StorageDriver>, None),
    ])
    .unwrap();
    let m = MonarchBuilder::new()
        .hierarchy(hierarchy)
        .policy(PolicyKind::FirstFit)
        .pool_threads(2)
        .telemetry(tcfg)
        .prefetch(pf)
        .build()
        .unwrap();
    m.init().unwrap();
    let mut buf = vec![0u8; 4096];
    m.read("f", 0, &mut buf).unwrap();
    m.wait_placement_idle();
    m
}

/// The instrumented read path across telemetry/prefetch configurations.
pub fn bench_telemetry_read_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_read_path");
    g.throughput(Throughput::Bytes(4096));
    let pf_on = PrefetchConfig {
        lookahead: 4,
        max_inflight_bytes: 256 << 20,
    };
    let variants: [(&str, TelemetryConfig, PrefetchConfig); 9] = [
        (
            "disabled",
            TelemetryConfig::disabled(),
            PrefetchConfig::disabled(),
        ),
        (
            "journal_off",
            TelemetryConfig {
                journal: false,
                ..TelemetryConfig::default()
            },
            PrefetchConfig::disabled(),
        ),
        // "full" has tracing *off* (the default): the read path pays one
        // branch on an immutable bool. Comparing it with the trace_*
        // variants quantifies the span-recording overhead and verifies
        // the sampling-off path stays within noise of PR 1's full config.
        (
            "full",
            TelemetryConfig::default(),
            PrefetchConfig::disabled(),
        ),
        (
            "trace_every_64",
            TelemetryConfig {
                trace_sample_every_n: 64,
                ..TelemetryConfig::default()
            },
            PrefetchConfig::disabled(),
        ),
        (
            "trace_all",
            TelemetryConfig::with_tracing(),
            PrefetchConfig::disabled(),
        ),
        // prefetch_off vs prefetch_on isolates the clairvoyant window's
        // per-read cost: the cursor advance and hit bookkeeping against an
        // active plan covering the file being read. prefetch_off is the
        // engine compiled in but disabled (no plan, `None` fast path) —
        // the configuration every non-clairvoyant user runs.
        (
            "prefetch_off",
            TelemetryConfig::default(),
            PrefetchConfig::disabled(),
        ),
        ("prefetch_on", TelemetryConfig::default(), pf_on),
        // profiler_off vs profiler_on isolates the access profiler's
        // per-read cost: one shard lock, a hash probe, and the ledger's
        // relaxed atomics. profiler_off is the default registry with only
        // the observatory switched off.
        (
            "profiler_off",
            TelemetryConfig {
                profiler: false,
                ..TelemetryConfig::default()
            },
            PrefetchConfig::disabled(),
        ),
        (
            "profiler_on",
            TelemetryConfig::default(),
            PrefetchConfig::disabled(),
        ),
    ];
    for (label, tcfg, pf) in variants {
        let m = warmed_monarch(tcfg, pf);
        if pf.enabled() {
            // An active plan containing the benched file: every read pays
            // the full on_read path (cursor advance + note bookkeeping).
            m.submit_plan(&AccessPlan::new(vec!["f".into()]));
            m.wait_placement_idle();
        }
        g.bench_function(label, |b| {
            let mut buf = vec![0u8; 4096];
            let mut off = 0u64;
            b.iter(|| {
                let n = m.read("f", off, &mut buf).unwrap();
                off = (off + 4096) % (252 << 10);
                std::hint::black_box(n)
            });
        });
    }
    g.finish();
}

/// CRC32C over a 256 KiB shard.
pub fn bench_crc32c(c: &mut Criterion) {
    let data = vec![0xa5u8; 256 << 10];
    let mut g = c.benchmark_group("crc32c");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("256KiB", |b| b.iter(|| crc32c(std::hint::black_box(&data))));
    g.finish();
}

/// TFRecord shard decode (length + CRC validation per record).
pub fn bench_tfrecord(c: &mut Criterion) {
    // A shard of 64 records × 4 KiB.
    let mut w = RecordWriter::new(Vec::new());
    for _ in 0..64 {
        w.write_record(&vec![7u8; 4096]).unwrap();
    }
    let shard = w.into_inner();
    let mut g = c.benchmark_group("tfrecord");
    g.throughput(Throughput::Bytes(shard.len() as u64));
    g.bench_function("decode_shard", |b| {
        b.iter(|| {
            let mut r = RecordReader::new(std::io::Cursor::new(&shard));
            r.count_remaining().unwrap()
        });
    });
    g.finish();
}

/// The discrete-event engine: queue churn and a multi-stream device.
pub fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("des");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("schedule_pop_1024", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..1024u64 {
                    q.schedule(SimTime(i * 37 % 4096), i);
                }
                while q.pop().is_some() {}
                q
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("psdev_32_streams", |b| {
        b.iter(|| {
            let mut dev = PsDevice::new("d", 500e6, 100e6);
            for i in 0..32u64 {
                dev.start(
                    SimTime::from_millis(i),
                    1 << 20,
                    SimTime::ZERO,
                    Kind::Read,
                    1.0,
                );
            }
            let mut done = 0;
            while let Some(at) = dev.next_wake() {
                done += dev.collect_finished(at).len();
            }
            assert_eq!(done, 32);
        });
    });
    g.finish();
}

/// Run every microbenchmark group against `c`, in the canonical order.
pub fn all(c: &mut Criterion) {
    bench_metadata(c);
    bench_quota(c);
    bench_placement(c);
    bench_pool(c);
    bench_telemetry_read_path(c);
    bench_crc32c(c);
    bench_tfrecord(c);
    bench_event_queue(c);
}
