//! Bench-history snapshots: normalized `BENCH_<name>.json` documents
//! committed at the repo root, plus the tolerance-gated comparison that
//! `scripts/check.sh perf` runs against them.
//!
//! Two kinds of trajectory are tracked:
//!
//! * `read_path` — wall-clock medians/p95s from the criterion
//!   microbenchmark groups ([`crate::micro`]). Noisy, so comparisons are
//!   direction-aware (improvements always pass) and retried.
//! * `sim_epoch` — virtual-time epoch seconds, bytes moved, and hit
//!   ratios from a fixed-seed miniature MONARCH simulation. Deterministic:
//!   any drift beyond tolerance is a behaviour change, not noise.

use std::path::{Path, PathBuf};

use criterion::{BenchResult, Criterion};
use dlpipe::config::{EnvConfig, MonarchSimConfig, PipelineConfig, Setup};
use dlpipe::geometry::DatasetGeom;
use dlpipe::models::ModelProfile;
use dlpipe::sim::{ClusterConfig, ClusterTrainer, Sharding};
use serde::{Deserialize, Serialize};

/// One normalized measurement inside a [`BenchDoc`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Stable identifier, e.g. `metadata/lookup_for_read` or
    /// `monarch/epoch1_seconds`.
    pub id: String,
    /// The gated value (median for timing entries).
    pub value: f64,
    /// Unit of `value`: `ns/iter`, `s`, `bytes`, `ratio`, `count`.
    pub unit: String,
    /// 95th percentile, for timing entries.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub p95: Option<f64>,
    /// Samples behind the percentiles, for timing entries.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub samples: Option<u64>,
    /// Comparison direction: `true` means a *drop* in `value` is the
    /// regression (hit ratios); default `false` means a rise is (latency,
    /// bytes moved).
    #[serde(default)]
    pub higher_is_better: bool,
}

/// A committed bench snapshot: the perf trajectory at one git revision.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchDoc {
    /// Snapshot family (`read_path`, `sim_epoch`) — names the file
    /// `BENCH_<name>.json` and selects the regeneration workload.
    pub name: String,
    /// `git rev-parse --short HEAD` at capture time (`unknown` outside a
    /// checkout).
    pub git_rev: String,
    /// Normalized measurements, in execution order.
    pub entries: Vec<BenchEntry>,
}

/// One entry that moved beyond tolerance (or disappeared).
#[derive(Debug, Clone)]
pub struct Violation {
    /// Entry id from the baseline.
    pub id: String,
    /// Human-readable description of the failure.
    pub detail: String,
}

/// Short git revision of the working tree, or `"unknown"`.
#[must_use]
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(repo_root())
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map_or_else(|| String::from("unknown"), |s| s.trim().to_string())
}

/// Repository root (where `BENCH_*.json` baselines live). Overridable
/// with `MONARCH_BENCH_DIR` for tests.
#[must_use]
pub fn repo_root() -> PathBuf {
    std::env::var("MONARCH_BENCH_DIR").map_or_else(
        |_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."),
        PathBuf::from,
    )
}

/// Normalize criterion results into a [`BenchDoc`].
#[must_use]
pub fn from_criterion(name: &str, results: &[BenchResult]) -> BenchDoc {
    BenchDoc {
        name: name.to_string(),
        git_rev: git_rev(),
        entries: results
            .iter()
            .map(|r| BenchEntry {
                id: format!("{}/{}", r.group, r.label),
                value: r.median_ns,
                unit: "ns/iter".into(),
                p95: Some(r.p95_ns),
                samples: Some(r.samples as u64),
                higher_is_better: false,
            })
            .collect(),
    }
}

fn sim_entry(id: &str, value: f64, unit: &str, higher_is_better: bool) -> BenchEntry {
    BenchEntry {
        id: id.to_string(),
        value,
        unit: unit.to_string(),
        p95: None,
        samples: None,
        higher_is_better,
    }
}

/// Generate the `sim_epoch` snapshot: a fixed-seed miniature MONARCH run
/// (24 MiB dataset, 2 epochs) reduced to the paper's headline shape —
/// per-epoch virtual seconds, PFS bytes moved, and the local-tier hit
/// ratio — plus the `sim_cluster` peer-cache variant
/// ([`sim_cluster_entries`]). Deterministic, so the tolerance gate
/// catches behaviour drift.
#[must_use]
pub fn sim_epoch_doc() -> BenchDoc {
    let geom = DatasetGeom::miniature("bench", 24_576, 9);
    let model = ModelProfile::lenet();
    let r = crate::run_once(
        &Setup::Monarch(MonarchSimConfig::with_ssd_capacity(8 << 30)),
        &geom,
        &model,
        &EnvConfig::default(),
        0x5eed,
        2,
    );
    let t = r.telemetry.as_ref().expect("monarch runs attach telemetry");
    let pfs_bytes: u64 = r
        .epochs
        .iter()
        .map(|e| e.devices[r.pfs_device].bytes_read())
        .sum();
    let mut entries = Vec::new();
    for (i, e) in r.epochs.iter().enumerate() {
        entries.push(sim_entry(
            &format!("monarch/epoch{}_seconds", i + 1),
            e.seconds,
            "s",
            false,
        ));
    }
    entries.push(sim_entry(
        "monarch/pfs_bytes_read",
        pfs_bytes as f64,
        "bytes",
        false,
    ));
    entries.push(sim_entry(
        "monarch/local_hit_ratio",
        t.stats.local_hit_ratio(),
        "ratio",
        true,
    ));
    entries.push(sim_entry(
        "monarch/copies_completed",
        t.stats.copies_completed as f64,
        "count",
        false,
    ));
    entries.extend(sim_cluster_entries());
    entries.extend(sim_outage_entries());
    entries.extend(sim_policy_entries());
    BenchDoc {
        name: "sim_epoch".into(),
        git_rev: git_rev(),
        entries,
    }
}

/// The `sim_outage` variant inside the `sim_epoch` snapshot: the chaos
/// scenario — a full SSD outage spanning the middle half of epoch 2 of a
/// fully-fitting run. Gated claims: degraded-mode throughput stays at the
/// no-fast-tier (vanilla-lustre) floor, the breaker quarantines and then
/// re-admits the tier, and the post-recovery epoch returns to local-read
/// speed. The window bounds come from a healthy probe run with the same
/// seed, so the whole triple is deterministic.
fn sim_outage_entries() -> Vec<BenchEntry> {
    use simfs::{FaultKind, FaultPlan};
    let geom = DatasetGeom::miniature("outage-bench", 24_576, 9);
    let model = ModelProfile::lenet();
    let env = EnvConfig {
        interference: false,
        ..EnvConfig::default()
    };
    let setup = Setup::Monarch(MonarchSimConfig::with_ssd_capacity(8 << 30));
    let healthy = crate::run_once(&setup, &geom, &model, &env, 0x5eed, 3);
    let e1_start = healthy.metadata_init_seconds + healthy.epochs[0].seconds;
    let plan = FaultPlan::new(0xfa11).with_window(
        "ssd",
        e1_start + 0.25 * healthy.epochs[1].seconds,
        e1_start + 0.75 * healthy.epochs[1].seconds,
        FaultKind::Outage,
    );
    let faulted_env = EnvConfig {
        fault_plan: Some(plan),
        ..env.clone()
    };
    let faulted = crate::run_once(&setup, &geom, &model, &faulted_env, 0x5eed, 3);
    // Vanilla-lustre never routes through the SSD, so with the same plan
    // attached the window entry is a pure no-fast-tier throughput marker
    // over the identical virtual-time interval.
    let baseline = crate::run_once(
        &Setup::VanillaLustre,
        &geom,
        &model,
        &faulted_env,
        0x5eed,
        3,
    );
    let t = faulted
        .telemetry
        .as_ref()
        .expect("monarch attaches telemetry");
    let health = t.health.as_ref().expect("monarch attaches health");
    let window_rate = faulted.fault_windows[0].samples_per_s;
    let floor_rate = baseline.fault_windows[0].samples_per_s;
    vec![
        sim_entry(
            "sim_outage/degraded_samples_per_s",
            window_rate,
            "samples/s",
            true,
        ),
        sim_entry(
            "sim_outage/degraded_vs_lustre_ratio",
            window_rate / floor_rate,
            "ratio",
            true,
        ),
        sim_entry(
            "sim_outage/recovery_epoch_seconds",
            faulted.epochs[2].seconds,
            "s",
            false,
        ),
        sim_entry(
            "sim_outage/recoveries",
            health.tiers.iter().map(|h| h.recoveries).sum::<u64>() as f64,
            "count",
            true,
        ),
        sim_entry(
            "sim_outage/degraded_reads",
            t.stats.degraded_reads as f64,
            "count",
            false,
        ),
    ]
}

/// The `sim_policy` variant inside the `sim_epoch` snapshot: the
/// partial-cache policy ablation — fast tier at half the dataset on a
/// congested PFS ([`EnvConfig::congested_pfs`]), clairvoyant lookahead
/// 64, three epochs. Gated claims: LRU eviction beats the paper's
/// no-eviction first-fit on wall time (the ratio entry), the clairvoyant
/// policy at least matches LRU, and recycling the quota slashes
/// synchronous PFS ops. Deterministic virtual time, so any drift is a
/// behaviour change.
fn sim_policy_entries() -> Vec<BenchEntry> {
    use monarch_core::config::PolicyKind;
    let geom = DatasetGeom::miniature("policy-bench", 16_384, 42);
    let model = ModelProfile::lenet();
    let cap = geom.total_bytes() / 2;
    let env = EnvConfig::congested_pfs();
    let run = |policy| {
        crate::run_once(
            &Setup::Monarch(MonarchSimConfig::policy_ablation(policy, cap)),
            &geom,
            &model,
            &env,
            1,
            3,
        )
    };
    let ff = run(PolicyKind::FirstFit);
    let lru = run(PolicyKind::LruEvict);
    let clair = run(PolicyKind::Clairvoyant);
    let learned = run(PolicyKind::Learned);
    let lru_stats = &lru.telemetry.as_ref().expect("telemetry").stats;
    vec![
        sim_entry(
            "sim_policy/first_fit_total_seconds",
            ff.total_seconds(),
            "s",
            false,
        ),
        sim_entry(
            "sim_policy/lru_total_seconds",
            lru.total_seconds(),
            "s",
            false,
        ),
        sim_entry(
            "sim_policy/lru_vs_first_fit_ratio",
            lru.total_seconds() / ff.total_seconds(),
            "ratio",
            false,
        ),
        sim_entry(
            "sim_policy/clairvoyant_total_seconds",
            clair.total_seconds(),
            "s",
            false,
        ),
        sim_entry(
            "sim_policy/learned_total_seconds",
            learned.total_seconds(),
            "s",
            false,
        ),
        sim_entry(
            "sim_policy/lru_evictions",
            lru_stats.evictions as f64,
            "count",
            true,
        ),
        sim_entry(
            "sim_policy/lru_pfs_ops",
            lru.pfs_ops() as f64,
            "count",
            false,
        ),
        sim_entry(
            "sim_policy/first_fit_pfs_ops",
            ff.pfs_ops() as f64,
            "count",
            false,
        ),
    ]
}

/// The `sim_cluster` variant inside the `sim_epoch` snapshot: a
/// fixed-seed 4-node peer-cache run (global-shuffle workload, per-node
/// quota 1/16 of the dataset) reduced to the scaling claim — warm-epoch
/// aggregate throughput, per-node PFS bytes, and peer-hit volume.
fn sim_cluster_entries() -> Vec<BenchEntry> {
    let geom = DatasetGeom::miniature("cluster-bench", 12_288, 7);
    let quota = geom.total_bytes() / 16;
    let r = ClusterTrainer::new(
        ClusterConfig {
            monarch_ssd_capacity: Some(quota),
            ..ClusterConfig::monarch_peer(4, Sharding::Static)
        },
        geom,
        ModelProfile::lenet(),
        PipelineConfig::default().with_seed(0xc1a5),
        EnvConfig::default(),
    )
    .run(2);
    let warm = r.epochs.len() - 1;
    vec![
        sim_entry(
            "sim_cluster/warm_epoch_seconds",
            r.epochs[warm].seconds,
            "s",
            false,
        ),
        sim_entry(
            "sim_cluster/agg_bytes_per_s",
            r.agg_bytes_per_s(warm),
            "bytes/s",
            true,
        ),
        sim_entry(
            "sim_cluster/pfs_bytes_per_node",
            r.pfs_bytes_per_node(warm),
            "bytes",
            false,
        ),
        sim_entry(
            "sim_cluster/peer_hits",
            r.epochs[warm].peer_hits as f64,
            "count",
            true,
        ),
        sim_entry(
            "sim_cluster/peer_fallbacks",
            r.epochs[warm].peer_fallbacks as f64,
            "count",
            false,
        ),
    ]
}

/// Generate the `read_path` snapshot by running the criterion groups
/// quietly in-process.
#[must_use]
pub fn read_path_doc() -> BenchDoc {
    let mut c = Criterion::default().quiet();
    crate::micro::all(&mut c);
    from_criterion("read_path", c.results())
}

/// Regenerate the snapshot family named by `name`.
///
/// # Errors
/// Returns the list of known families when `name` is not one of them.
pub fn generate(name: &str) -> Result<BenchDoc, String> {
    match name {
        "read_path" => Ok(read_path_doc()),
        "sim_epoch" => Ok(sim_epoch_doc()),
        other => Err(format!(
            "unknown snapshot '{other}' (known: read_path, sim_epoch)"
        )),
    }
}

/// Write `doc` as `BENCH_<name>.json` at the repo root; returns the path.
///
/// # Errors
/// Propagates serialization and I/O failures as strings.
pub fn write(doc: &BenchDoc) -> Result<PathBuf, String> {
    let path = repo_root().join(format!("BENCH_{}.json", doc.name));
    let json = serde_json::to_string_pretty(doc).map_err(|e| e.to_string())?;
    std::fs::write(&path, json + "\n").map_err(|e| e.to_string())?;
    Ok(path)
}

/// Load a committed baseline.
///
/// # Errors
/// Propagates read and parse failures as strings.
pub fn load(path: &Path) -> Result<BenchDoc, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))
}

/// Diff `run` against `baseline`: every baseline entry must be present
/// and must not regress by more than `tolerance` (a fraction, e.g. 0.15)
/// in its bad direction. Improvements always pass; entries new in `run`
/// are ignored (they gate once committed).
#[must_use]
pub fn compare(baseline: &BenchDoc, run: &BenchDoc, tolerance: f64) -> Vec<Violation> {
    let mut violations = Vec::new();
    for base in &baseline.entries {
        let Some(cur) = run.entries.iter().find(|e| e.id == base.id) else {
            violations.push(Violation {
                id: base.id.clone(),
                detail: "present in baseline but missing from this run".into(),
            });
            continue;
        };
        if base.value == 0.0 {
            // Zero baselines (e.g. a bytes counter at 0) gate exactly:
            // any nonzero regression in the bad direction fails.
            let regressed = if base.higher_is_better {
                cur.value < 0.0
            } else {
                cur.value > 0.0
            };
            if regressed {
                violations.push(Violation {
                    id: base.id.clone(),
                    detail: format!("baseline 0 {u}, now {v} {u}", v = cur.value, u = base.unit),
                });
            }
            continue;
        }
        let rel = (cur.value - base.value) / base.value;
        let regression = if base.higher_is_better { -rel } else { rel };
        if regression > tolerance {
            violations.push(Violation {
                id: base.id.clone(),
                detail: format!(
                    "{dir} {pct:.1}% (baseline {b:.1} {u}, now {c:.1} {u}, tolerance {t:.0}%)",
                    dir = if rel > 0.0 { "up" } else { "down" },
                    pct = rel.abs() * 100.0,
                    b = base.value,
                    c = cur.value,
                    u = base.unit,
                    t = tolerance * 100.0,
                ),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(entries: Vec<BenchEntry>) -> BenchDoc {
        BenchDoc {
            name: "t".into(),
            git_rev: "abc".into(),
            entries,
        }
    }

    fn entry(id: &str, value: f64, higher_is_better: bool) -> BenchEntry {
        BenchEntry {
            id: id.into(),
            value,
            unit: "ns/iter".into(),
            p95: None,
            samples: None,
            higher_is_better,
        }
    }

    #[test]
    fn compare_is_direction_aware() {
        let base = doc(vec![entry("lat", 100.0, false), entry("hits", 0.8, true)]);
        // Latency down 50% and hits up: both improvements, no violations.
        let better = doc(vec![entry("lat", 50.0, false), entry("hits", 0.9, true)]);
        assert!(compare(&base, &better, 0.15).is_empty());
        // Latency up 16% and hits down 20%: both out of tolerance.
        let worse = doc(vec![entry("lat", 116.0, false), entry("hits", 0.64, true)]);
        let v = compare(&base, &worse, 0.15);
        assert_eq!(v.len(), 2, "{v:?}");
        // Within tolerance: 10% either way passes.
        let near = doc(vec![entry("lat", 110.0, false), entry("hits", 0.75, true)]);
        assert!(compare(&base, &near, 0.15).is_empty());
    }

    #[test]
    fn missing_entries_are_violations() {
        let base = doc(vec![entry("lat", 100.0, false)]);
        let run = doc(vec![entry("other", 1.0, false)]);
        let v = compare(&base, &run, 0.15);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("missing"));
    }

    #[test]
    fn zero_baselines_gate_exactly() {
        let base = doc(vec![entry("pfs_bytes", 0.0, false)]);
        assert!(compare(&base, &doc(vec![entry("pfs_bytes", 0.0, false)]), 0.15).is_empty());
        assert_eq!(
            compare(&base, &doc(vec![entry("pfs_bytes", 7.0, false)]), 0.15).len(),
            1
        );
    }

    #[test]
    fn doc_round_trips_through_json() {
        let mut e = entry("metadata/lookup_for_read", 123.5, false);
        e.p95 = Some(150.0);
        e.samples = Some(20);
        let d = doc(vec![e, entry("monarch/local_hit_ratio", 0.9, true)]);
        let json = serde_json::to_string_pretty(&d).unwrap();
        let back: BenchDoc = serde_json::from_str(&json).unwrap();
        assert_eq!(back.entries.len(), 2);
        assert_eq!(back.entries[0].id, "metadata/lookup_for_read");
        assert_eq!(back.entries[0].p95, Some(150.0));
        assert!(back.entries[1].higher_is_better);
        assert!(back.entries[1].p95.is_none());
    }

    #[test]
    fn sim_epoch_doc_is_deterministic() {
        let a = sim_epoch_doc();
        let b = sim_epoch_doc();
        assert!(!a.entries.is_empty());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.id, y.id);
            assert!(
                (x.value - y.value).abs() < 1e-9,
                "{}: {} vs {}",
                x.id,
                x.value,
                y.value
            );
        }
        // The miniature dataset fully fits: epoch 2 must beat epoch 1 and
        // the hit ratio must be meaningful.
        let get = |id: &str| a.entries.iter().find(|e| e.id == id).unwrap().value;
        assert!(get("monarch/epoch2_seconds") < get("monarch/epoch1_seconds"));
        assert!(get("monarch/local_hit_ratio") > 0.5);
        assert!(get("monarch/pfs_bytes_read") > 0.0);
        // The sim_cluster variant rides in the same doc: peers must be
        // serving traffic on the warm epoch.
        assert!(get("sim_cluster/peer_hits") > 0.0);
        assert!(get("sim_cluster/agg_bytes_per_s") > 0.0);
        assert!(get("sim_cluster/pfs_bytes_per_node") > 0.0);
        // The sim_outage chaos variant: degraded mode holds the
        // no-fast-tier floor and the breaker re-admitted the tier.
        assert!(get("sim_outage/degraded_vs_lustre_ratio") > 0.9);
        assert!(get("sim_outage/recoveries") >= 1.0);
        assert!(get("sim_outage/degraded_reads") > 0.0);
        // The sim_policy ablation: eviction beats the no-eviction
        // baseline on the congested-PFS partial cache, clairvoyant at
        // least matches LRU, and PFS ops collapse.
        assert!(get("sim_policy/lru_vs_first_fit_ratio") < 0.6);
        assert!(
            get("sim_policy/clairvoyant_total_seconds")
                <= get("sim_policy/lru_total_seconds") * 1.05
        );
        assert!(get("sim_policy/lru_evictions") > 0.0);
        assert!(get("sim_policy/lru_pfs_ops") < get("sim_policy/first_fit_pfs_ops") / 3.0);
    }
}
