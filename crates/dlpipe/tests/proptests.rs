//! Property-based tests over the simulated trainer: conservation laws and
//! monotonicity that must hold for *any* workload geometry or seed.

use dlpipe::config::{EnvConfig, MonarchSimConfig, PipelineConfig, Setup};
use dlpipe::geometry::{DatasetGeom, ShardGeom};
use dlpipe::models::ModelProfile;
use dlpipe::sim::SimTrainer;
use proptest::prelude::*;

fn model() -> ModelProfile {
    ModelProfile {
        name: "prop".into(),
        per_sample_step: 30e-6,
        gpu_fraction: 0.7,
        cpu_per_sample: 40e-6,
        batch_size: 128,
    }
}

fn geom_from(sizes: Vec<(u64, u64)>) -> DatasetGeom {
    DatasetGeom::from_shards(
        "prop",
        sizes
            .into_iter()
            .map(|(bytes, records)| ShardGeom {
                bytes: bytes.max(records), // at least 1 byte per record
                records,
            })
            .collect(),
    )
}

/// Shard strategies: a handful of shards with varied sizes and counts.
fn shards() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((64u64 * 1024..32 * 1024 * 1024, 8u64..256), 2..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Vanilla-lustre conservation: every epoch reads exactly the dataset
    /// bytes from the PFS, with op counts equal to the ceil-sum of chunks,
    /// regardless of geometry or seed.
    #[test]
    fn vanilla_conservation(sizes in shards(), seed in 0u64..1000) {
        let geom = geom_from(sizes);
        let r = SimTrainer::new(
            Setup::VanillaLustre,
            geom.clone(),
            model(),
            PipelineConfig::default().with_seed(seed),
            EnvConfig::default(),
        )
        .run(2);
        for e in &r.epochs {
            prop_assert_eq!(e.devices[r.pfs_device].bytes_read(), geom.total_bytes());
            prop_assert_eq!(
                e.devices[r.pfs_device].reads(),
                geom.chunk_reads_per_epoch(256 << 10)
            );
            prop_assert!(e.seconds > 0.0);
            prop_assert!(e.gpu_util > 0.0 && e.gpu_util <= 1.0);
        }
    }

    /// MONARCH quota invariant: SSD bytes written never exceed the quota,
    /// and per-epoch PFS reads never exceed the vanilla count.
    #[test]
    fn monarch_quota_and_ops(sizes in shards(), seed in 0u64..1000, frac in 0.1f64..1.2) {
        let geom = geom_from(sizes);
        let quota = ((geom.total_bytes() as f64 * frac) as u64).max(1);
        let r = SimTrainer::new(
            Setup::Monarch(MonarchSimConfig::with_ssd_capacity(quota)),
            geom.clone(),
            model(),
            PipelineConfig::default().with_seed(seed),
            EnvConfig::default(),
        )
        .run(3);
        let written: u64 = r.epochs.iter().map(|e| e.devices[0].bytes_written()).sum();
        prop_assert!(written <= quota, "wrote {written} > quota {quota}");
        let vanilla_ops = geom.chunk_reads_per_epoch(256 << 10);
        // Epoch 1 may add full-shard fetches on top of chunk reads; later
        // epochs must be at or below the vanilla chunk count.
        for e in &r.epochs[1..] {
            prop_assert!(
                e.devices[r.pfs_device].reads() <= vanilla_ops,
                "epoch {} PFS ops exceeded vanilla", e.epoch
            );
        }
        // Steady-state epochs are identical in op count (placement has
        // converged — no eviction means no churn).
        prop_assert_eq!(
            r.epochs[1].devices[r.pfs_device].reads(),
            r.epochs[2].devices[r.pfs_device].reads()
        );
    }

    /// Bigger local quota never increases steady-state PFS traffic.
    #[test]
    fn capacity_monotonicity(sizes in shards(), seed in 0u64..100) {
        let geom = geom_from(sizes);
        let run = |frac: f64| {
            let quota = ((geom.total_bytes() as f64 * frac) as u64).max(1);
            SimTrainer::new(
                Setup::Monarch(MonarchSimConfig::with_ssd_capacity(quota)),
                geom.clone(),
                model(),
                PipelineConfig::default().with_seed(seed),
                EnvConfig::default(),
            )
            .run(2)
        };
        let small = run(0.3);
        let big = run(0.9);
        prop_assert!(
            big.epochs[1].devices[big.pfs_device].reads()
                <= small.epochs[1].devices[small.pfs_device].reads(),
            "more cache must not mean more PFS reads"
        );
    }
}
