//! Paper-scale smoke run (release-mode harnesses do the real figures).
use dlpipe::config::*;
use dlpipe::geometry::DatasetGeom;
use dlpipe::models::ModelProfile;
use dlpipe::sim::SimTrainer;

#[test]
#[ignore = "slow in debug; run explicitly or via the bench harness"]
fn paper_scale_smoke() {
    let g = DatasetGeom::imagenet_100g();
    let start = std::time::Instant::now();
    let r = SimTrainer::new(
        Setup::VanillaLustre,
        g,
        ModelProfile::lenet(),
        PipelineConfig::default(),
        EnvConfig::default(),
    )
    .run(3);
    println!("wall: {:?}", start.elapsed());
    for e in &r.epochs {
        println!(
            "epoch {} {:.1}s ops={}",
            e.epoch,
            e.seconds,
            e.devices[r.pfs_device].data_ops()
        );
    }
}
