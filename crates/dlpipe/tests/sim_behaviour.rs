//! Behavioural tests of the simulated trainer: the mechanisms behind each
//! figure, exercised at miniature scale.

use dlpipe::config::{EnvConfig, MonarchSimConfig, PipelineConfig, Setup, SimTierKind};
use dlpipe::geometry::DatasetGeom;
use dlpipe::models::ModelProfile;
use dlpipe::report::RunReport;
use dlpipe::sim::SimTrainer;
use monarch_core::config::PolicyKind;

fn geom() -> DatasetGeom {
    DatasetGeom::miniature("bh", 24_576, 9)
}

fn io_model() -> ModelProfile {
    ModelProfile {
        name: "io-bound".into(),
        per_sample_step: 40e-6,
        gpu_fraction: 0.7,
        cpu_per_sample: 50e-6,
        batch_size: 128,
    }
}

fn run(setup: Setup, epochs: usize) -> RunReport {
    SimTrainer::new(
        setup,
        geom(),
        io_model(),
        PipelineConfig::default().with_seed(11),
        EnvConfig::default(),
    )
    .run(epochs)
}

#[test]
fn caching_epoch2_waits_for_flush_and_reads_expanded_bytes() {
    let r = run(Setup::VanillaCaching, 2);
    // Epoch 1 spills every byte (expanded volume is modelled as drain
    // weight, so the byte counters stay at the source volume). Writes that
    // drain during the inter-epoch flush barrier are attributed to the
    // next epoch's delta, so sum across both.
    let spilled: u64 = r.epochs.iter().map(|e| e.devices[0].bytes_written()).sum();
    assert_eq!(spilled, geom().total_bytes());
    assert!(
        r.epochs[0].devices[0].bytes_written() > geom().total_bytes() * 9 / 10,
        "almost all spills happen inside epoch 1"
    );
    // Epoch 2 reads the cache only.
    assert_eq!(r.epochs[1].devices[r.pfs_device].data_ops(), 0);
    assert_eq!(r.epochs[1].devices[0].bytes_read(), geom().total_bytes());
    // And the expansion makes cached epochs slower than vanilla-local.
    let local = run(Setup::VanillaLocal, 2);
    assert!(
        r.epochs[1].seconds > local.epochs[1].seconds,
        "cache-format overhead must show: {} !> {}",
        r.epochs[1].seconds,
        local.epochs[1].seconds
    );
}

#[test]
fn monarch_no_full_fetch_still_converges_but_slower_in_epoch1_hits() {
    let full = run(
        Setup::Monarch(MonarchSimConfig::with_ssd_capacity(8 << 30)),
        3,
    );
    let chunked = run(
        Setup::Monarch(MonarchSimConfig {
            full_file_fetch: false,
            ..MonarchSimConfig::with_ssd_capacity(8 << 30)
        }),
        3,
    );
    // Both fully place by the end of epoch 2 (last epoch local).
    assert_eq!(full.epochs[2].devices[full.pfs_device].data_ops(), 0);
    assert_eq!(chunked.epochs[2].devices[chunked.pfs_device].data_ops(), 0);
    // The full-file fetch serves part of epoch 1 from the SSD; the
    // chunk-granular variant cannot (every chunk is read from the PFS
    // exactly once in epoch 1).
    let full_e1_local = full.epochs[0].devices[0].reads();
    let chunked_e1_local = chunked.epochs[0].devices[0].reads();
    assert!(
        full_e1_local > chunked_e1_local,
        "full-fetch epoch-1 local reads {full_e1_local} !> chunked {chunked_e1_local}"
    );
    // Chunked spills the whole dataset through CacheWrite ops instead.
    assert_eq!(
        chunked.epochs[0].devices[0].bytes_written() + chunked.epochs[1].devices[0].bytes_written(),
        geom().total_bytes()
    );
}

#[test]
fn three_tier_hierarchy_fills_top_down() {
    let total = geom().total_bytes();
    let cfg = MonarchSimConfig {
        tiers: vec![(SimTierKind::Ram, total / 4), (SimTierKind::Ssd, total)],
        ..MonarchSimConfig::paper_default()
    };
    let r = run(Setup::Monarch(cfg), 2);
    // Devices: 0 = ram, 1 = ssd, 2 = lustre.
    assert_eq!(r.device_names, vec!["ram", "ssd", "lustre"]);
    let ram_writes: u64 = r.epochs.iter().map(|e| e.devices[0].bytes_written()).sum();
    let ssd_writes: u64 = r.epochs.iter().map(|e| e.devices[1].bytes_written()).sum();
    assert!(ram_writes > 0, "ram tier must receive placements");
    assert!(ram_writes <= total / 4, "ram quota respected");
    assert!(ssd_writes > 0, "overflow must land on the ssd tier");
    // Epoch 2 is PFS-free (everything fits across ram+ssd).
    assert_eq!(r.epochs[1].devices[2].data_ops(), 0);
}

#[test]
fn lru_policy_in_sim_keeps_running_and_evicts() {
    let cfg = MonarchSimConfig {
        policy: PolicyKind::LruEvict,
        ..MonarchSimConfig::with_ssd_capacity(geom().total_bytes() / 2)
    };
    let r = run(Setup::Monarch(cfg), 3);
    // Evictions mean repeated placement traffic: SSD writes exceed its
    // capacity over the run (thrashing, §III-A's argument).
    let ssd_written: u64 = r.epochs.iter().map(|e| e.devices[0].bytes_written()).sum();
    assert!(
        ssd_written > geom().total_bytes() / 2,
        "LRU should rewrite beyond quota over 3 epochs: {ssd_written}"
    );
    // The run still terminates with every epoch accounted.
    assert_eq!(r.epochs.len(), 3);
}

#[test]
fn interference_off_reduces_epoch_variance() {
    let noisy: Vec<f64> = (0..5)
        .map(|s| {
            SimTrainer::new(
                Setup::VanillaLustre,
                geom(),
                io_model(),
                PipelineConfig::default().with_seed(100 + s),
                EnvConfig::default(),
            )
            .run(1)
            .total_seconds()
        })
        .collect();
    let quiet: Vec<f64> = (0..5)
        .map(|s| {
            let env = EnvConfig {
                interference: false,
                ..EnvConfig::default()
            };
            SimTrainer::new(
                Setup::VanillaLustre,
                geom(),
                io_model(),
                PipelineConfig::default().with_seed(100 + s),
                env,
            )
            .run(1)
            .total_seconds()
        })
        .collect();
    let spread = |xs: &[f64]| {
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        let min = xs.iter().cloned().fold(f64::MAX, f64::min);
        (max - min) / min
    };
    assert!(
        spread(&noisy) > spread(&quiet),
        "interference must add run-to-run variability: noisy {:?} quiet {:?}",
        noisy,
        quiet
    );
}

#[test]
fn pool_size_one_still_completes_placement() {
    let cfg = MonarchSimConfig {
        pool_threads: 1,
        ..MonarchSimConfig::with_ssd_capacity(8 << 30)
    };
    let r = run(Setup::Monarch(cfg), 3);
    assert_eq!(
        r.epochs[2].devices[r.pfs_device].data_ops(),
        0,
        "even one worker must finish placing a small dataset within 3 epochs"
    );
}

#[test]
fn prestage_gives_warm_first_epoch() {
    let on_demand = run(
        Setup::Monarch(MonarchSimConfig::with_ssd_capacity(8 << 30)),
        2,
    );
    let prestaged = run(
        Setup::Monarch(MonarchSimConfig {
            prestage: true,
            ..MonarchSimConfig::with_ssd_capacity(8 << 30)
        }),
        2,
    );
    assert_eq!(on_demand.prestage_seconds, 0.0);
    assert!(
        prestaged.prestage_seconds > 0.0,
        "staging time must be reported"
    );
    // With a full fit, a pre-staged epoch 1 reads nothing from the PFS.
    assert_eq!(
        prestaged.epochs[0].devices[prestaged.pfs_device].reads(),
        0,
        "warm first epoch must be PFS-free"
    );
    assert!(
        prestaged.epochs[0].seconds < on_demand.epochs[0].seconds,
        "warm epoch 1 should beat on-demand epoch 1"
    );
    // But the paper's trade-off shows: staging + training >= on-demand's
    // overlapped epoch 1 at full fit.
    assert!(
        prestaged.prestage_seconds + prestaged.epochs[0].seconds
            > on_demand.epochs[0].seconds * 0.95,
        "staging is not free"
    );
}

#[test]
fn throughput_tracing_produces_a_series() {
    let r = SimTrainer::new(
        Setup::VanillaLustre,
        geom(),
        io_model(),
        PipelineConfig {
            trace_interval_secs: Some(1.0),
            ..PipelineConfig::default().with_seed(2)
        },
        EnvConfig::default(),
    )
    .run(1);
    assert!(
        r.pfs_throughput_series.len() >= 3,
        "expected several samples, got {:?}",
        r.pfs_throughput_series
    );
    // Samples are time-ordered with sane rates.
    for w in r.pfs_throughput_series.windows(2) {
        assert!(w[1].0 > w[0].0);
    }
    let max = r
        .pfs_throughput_series
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0, f64::max);
    assert!(max > 0.0 && max < 1e10);
    // Without the flag, no series is collected.
    let quiet = SimTrainer::new(
        Setup::VanillaLustre,
        geom(),
        io_model(),
        PipelineConfig::default().with_seed(2),
        EnvConfig::default(),
    )
    .run(1);
    assert!(quiet.pfs_throughput_series.is_empty());
}

#[test]
fn monarch_sim_attaches_telemetry_snapshot() {
    let r = run(
        Setup::Monarch(MonarchSimConfig::with_ssd_capacity(8 << 30)),
        3,
    );
    let t = r
        .telemetry
        .as_ref()
        .expect("monarch runs attach a telemetry snapshot");
    let shards = geom().num_shards() as u64;
    // Full fit: every shard is scheduled once and every copy completes
    // (epoch 3 is PFS-free, so placement drained earlier).
    assert_eq!(t.stats.copies_scheduled, shards);
    assert_eq!(t.stats.copies_completed, shards);
    assert_eq!(t.copy_duration.count, shards);
    assert_eq!(t.queue_wait.count, shards);
    assert!(
        t.copy_duration.p50_nanos > 0,
        "virtual copy durations recorded"
    );
    // Each placement writes the full shard into tier 0.
    assert_eq!(t.stats.tiers[0].writes, shards);
    assert!(t.stats.tiers[0].reads > 0, "later epochs read locally");
    // Lifecycle events: scheduled, started, decided, completed per shard.
    assert!(
        t.events_recorded >= 4 * shards,
        "events: {}",
        t.events_recorded
    );
    // Vanilla setups carry no registry.
    assert!(run(Setup::VanillaLustre, 1).telemetry.is_none());
}

#[test]
fn sim_epoch_populates_gauges() {
    let r = run(
        Setup::Monarch(MonarchSimConfig::with_ssd_capacity(8 << 30)),
        2,
    );
    let t = r.telemetry.as_ref().expect("telemetry snapshot");
    let gauge = |name: &str, label: Option<(&str, &str)>| {
        t.gauges
            .iter()
            .find(|g| {
                g.name == name
                    && match label {
                        Some((k, v)) => g.labels.iter().any(|(lk, lv)| lk == k && lv == v),
                        None => g.labels.is_empty(),
                    }
            })
            .unwrap_or_else(|| panic!("gauge {name} {label:?} missing from {:?}", t.gauges))
            .value
    };
    // The dataset fits in the 8 GiB SSD quota, so by end of run every
    // shard is resident locally: occupancy = total bytes, files = shards.
    assert_eq!(
        gauge("monarch_tier_occupancy_bytes", Some(("tier", "ssd0"))) as u64,
        geom().total_bytes()
    );
    assert_eq!(
        gauge("monarch_tier_capacity_bytes", Some(("tier", "ssd0"))) as u64,
        8 << 30
    );
    assert_eq!(
        gauge("monarch_tier_files", Some(("tier", "ssd0"))) as u64,
        geom().num_shards() as u64
    );
    // Quiescent at end of run: queues drained, all workers idle.
    assert_eq!(gauge("monarch_lane_queued", Some(("lane", "demand"))), 0.0);
    assert_eq!(
        gauge("monarch_lane_queued", Some(("lane", "prefetch"))),
        0.0
    );
    assert_eq!(gauge("monarch_pool_inflight_jobs", None), 0.0);
}

#[test]
fn op_counts_are_exact_chunk_math() {
    let r = run(Setup::VanillaLustre, 1);
    assert_eq!(
        r.epochs[0].devices[r.pfs_device].reads(),
        geom().chunk_reads_per_epoch(256 << 10)
    );
}
