//! Run reports: per-epoch times, device counters, resource-usage proxies.

use monarch_core::observe::{LedgerBuckets, ObserveReport};
use monarch_core::telemetry::{TelemetrySnapshot, TimeSeries};
use serde::Serialize;
use simfs::DeviceStats;

/// Measurements of one training epoch.
#[derive(Debug, Clone, Serialize)]
pub struct EpochReport {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Epoch wall time in (virtual) seconds.
    pub seconds: f64,
    /// Per-device counter deltas over the epoch; index matches
    /// `RunReport::device_names`.
    pub devices: Vec<DeviceStats>,
    /// GPU utilisation proxy: accelerator busy time / epoch time.
    pub gpu_util: f64,
    /// CPU utilisation proxy: host work / epoch time.
    pub cpu_util: f64,
    /// Bottleneck attribution for this epoch, from the time-lost ledger
    /// delta across the epoch; `None` for non-MONARCH setups (or with
    /// the profiler disabled).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub observe: Option<LedgerBuckets>,
}

/// Throughput accounting for one fault-plan window: the sample
/// consumption rate while the window was active, for comparing a degraded
/// run against its healthy and no-fast-tier baselines.
#[derive(Debug, Clone, Serialize)]
pub struct FaultWindowReport {
    /// Device the window targeted.
    pub device: String,
    /// Failure mode (debug rendering of the `FaultKind`).
    pub kind: String,
    /// Window start, virtual seconds.
    pub start_s: f64,
    /// Window end, virtual seconds.
    pub end_s: f64,
    /// Samples consumed per second while the window was active.
    pub samples_per_s: f64,
}

/// Measurements of one full training run.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// Setup label ("vanilla-lustre", "monarch", ...).
    pub setup: String,
    /// Model name.
    pub model: String,
    /// Dataset label.
    pub dataset: String,
    /// Device names; per-epoch stats index into this.
    pub device_names: Vec<String>,
    /// Index of the PFS device within `device_names`.
    pub pfs_device: usize,
    /// Seconds spent in the metadata-initialisation scan (MONARCH only;
    /// zero otherwise). Not included in epoch times, matching the paper's
    /// separate reporting.
    pub metadata_init_seconds: f64,
    /// Seconds spent staging the dataset before training (placement
    /// option (i) only; zero under the paper's on-demand option (ii)).
    #[serde(default)]
    pub prestage_seconds: f64,
    /// Optional PFS read-throughput samples `(virtual_seconds, bytes/s)`,
    /// collected when `PipelineConfig::trace_interval_secs` is set. The
    /// simulator and the real trainer emit the same [`TimeSeries`] schema.
    #[serde(default)]
    pub pfs_throughput_series: TimeSeries,
    /// Telemetry snapshot of the MONARCH registry at run end (histograms,
    /// copy counters, journal totals); `None` for non-MONARCH setups.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub telemetry: Option<TelemetrySnapshot>,
    /// Chrome Trace Event / Perfetto JSON of the virtual-time span tree,
    /// present when `MonarchSimConfig::trace_sample_every_n > 0`. Same
    /// schema the real middleware exports via `Monarch::trace_json`, so
    /// both load identically in `ui.perfetto.dev`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace_json: Option<String>,
    /// Whole-run bottleneck-attribution report (buckets over the total
    /// training time, top-K hot and wasted files); `None` for
    /// non-MONARCH setups.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub observe: Option<ObserveReport>,
    /// Per-window throughput when a fault plan was attached (empty
    /// otherwise). Windows the run never reached are omitted.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub fault_windows: Vec<FaultWindowReport>,
    /// Per-epoch measurements.
    pub epochs: Vec<EpochReport>,
}

impl RunReport {
    /// Total training time across epochs, seconds.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.epochs.iter().map(|e| e.seconds).sum()
    }

    /// Total I/O operations submitted to the PFS (reads + writes).
    #[must_use]
    pub fn pfs_ops(&self) -> u64 {
        self.epochs
            .iter()
            .map(|e| e.devices[self.pfs_device].data_ops())
            .sum()
    }

    /// PFS operations in one epoch.
    #[must_use]
    pub fn pfs_ops_epoch(&self, epoch: usize) -> u64 {
        self.epochs[epoch].devices[self.pfs_device].data_ops()
    }

    /// Mean GPU utilisation across epochs (time-weighted).
    #[must_use]
    pub fn gpu_util(&self) -> f64 {
        weighted_util(&self.epochs, |e| e.gpu_util)
    }

    /// Mean CPU utilisation across epochs (time-weighted).
    #[must_use]
    pub fn cpu_util(&self) -> f64 {
        weighted_util(&self.epochs, |e| e.cpu_util)
    }
}

fn weighted_util(epochs: &[EpochReport], f: impl Fn(&EpochReport) -> f64) -> f64 {
    let total: f64 = epochs.iter().map(|e| e.seconds).sum();
    if total == 0.0 {
        return 0.0;
    }
    epochs.iter().map(|e| f(e) * e.seconds).sum::<f64>() / total
}

/// Mean and (population) standard deviation of a sample.
#[must_use]
pub fn mean_std(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Aggregate of repeated trials of the same configuration.
#[derive(Debug, Clone, Serialize)]
pub struct TrialSummary {
    /// Setup label.
    pub setup: String,
    /// Model name.
    pub model: String,
    /// Per-epoch mean seconds across trials.
    pub epoch_mean: Vec<f64>,
    /// Per-epoch stddev across trials.
    pub epoch_std: Vec<f64>,
    /// Mean total seconds.
    pub total_mean: f64,
    /// Stddev of total seconds.
    pub total_std: f64,
    /// Mean PFS op count over the whole run.
    pub pfs_ops_mean: f64,
    /// Mean utilisations.
    pub gpu_util: f64,
    /// Mean CPU utilisation.
    pub cpu_util: f64,
}

impl TrialSummary {
    /// Summarise repeated runs (all must share setup/model/epoch count).
    ///
    /// # Panics
    /// If `runs` is empty or epoch counts differ.
    #[must_use]
    pub fn from_runs(runs: &[RunReport]) -> Self {
        assert!(!runs.is_empty());
        let epochs = runs[0].epochs.len();
        assert!(runs.iter().all(|r| r.epochs.len() == epochs));
        let mut epoch_mean = Vec::with_capacity(epochs);
        let mut epoch_std = Vec::with_capacity(epochs);
        for e in 0..epochs {
            let xs: Vec<f64> = runs.iter().map(|r| r.epochs[e].seconds).collect();
            let (m, s) = mean_std(&xs);
            epoch_mean.push(m);
            epoch_std.push(s);
        }
        let totals: Vec<f64> = runs.iter().map(RunReport::total_seconds).collect();
        let (total_mean, total_std) = mean_std(&totals);
        let ops: Vec<f64> = runs.iter().map(|r| r.pfs_ops() as f64).collect();
        let (pfs_ops_mean, _) = mean_std(&ops);
        let gpu: Vec<f64> = runs.iter().map(RunReport::gpu_util).collect();
        let cpu: Vec<f64> = runs.iter().map(RunReport::cpu_util).collect();
        Self {
            setup: runs[0].setup.clone(),
            model: runs[0].model.clone(),
            epoch_mean,
            epoch_std,
            total_mean,
            total_std,
            pfs_ops_mean,
            gpu_util: mean_std(&gpu).0,
            cpu_util: mean_std(&cpu).0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(setup: &str, secs: &[f64], pfs_ops: u64) -> RunReport {
        RunReport {
            setup: setup.into(),
            model: "lenet".into(),
            dataset: "d".into(),
            device_names: vec!["ssd".into(), "lustre".into()],
            pfs_device: 1,
            metadata_init_seconds: 0.0,
            prestage_seconds: 0.0,
            pfs_throughput_series: TimeSeries::new(),
            telemetry: None,
            trace_json: None,
            observe: None,
            fault_windows: Vec::new(),
            epochs: secs
                .iter()
                .enumerate()
                .map(|(i, &s)| {
                    let mut lustre = DeviceStats::default();
                    for _ in 0..pfs_ops {
                        lustre.record_read(1);
                    }
                    EpochReport {
                        epoch: i,
                        seconds: s,
                        devices: vec![DeviceStats::default(), lustre],
                        gpu_util: 0.5,
                        cpu_util: 0.3,
                        observe: None,
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn totals_and_ops() {
        let r = run("x", &[10.0, 20.0, 30.0], 5);
        assert_eq!(r.total_seconds(), 60.0);
        assert_eq!(r.pfs_ops(), 15);
        assert_eq!(r.pfs_ops_epoch(1), 5);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn summary_across_trials() {
        let runs = vec![run("x", &[10.0, 20.0], 4), run("x", &[14.0, 24.0], 6)];
        let s = TrialSummary::from_runs(&runs);
        assert_eq!(s.epoch_mean, vec![12.0, 22.0]);
        assert!((s.total_mean - 34.0).abs() < 1e-12);
        assert!((s.pfs_ops_mean - 10.0).abs() < 1e-12);
        assert!(s.epoch_std[0] > 1.9 && s.epoch_std[0] < 2.1);
    }

    #[test]
    fn weighted_utils() {
        let r = run("x", &[10.0, 30.0], 1);
        assert!((r.gpu_util() - 0.5).abs() < 1e-12);
        assert!((r.cpu_util() - 0.3).abs() < 1e-12);
    }
}
