//! Pipeline, environment and setup configuration.

use monarch_core::config::{AdmissionKind, PolicyKind};
use serde::Serialize;
use simfs::FaultPlan;

/// Input-pipeline knobs (the tf.data configuration of §II).
#[derive(Debug, Clone, Serialize)]
pub struct PipelineConfig {
    /// Parallel shard readers (tf.data interleave cycle length).
    pub readers: usize,
    /// Chunk size of each read operation — TensorFlow's buffered record
    /// reader issues ~256 KiB `pread`s; the paper's op counts imply the
    /// same.
    pub chunk_bytes: u64,
    /// Prefetch buffer capacity, in batches.
    pub prefetch_batches: u64,
    /// Shuffle seed for this run (varied across trials).
    pub seed: u64,
    /// When set, sample the PFS read throughput every this many virtual
    /// seconds; the series lands in `RunReport::pfs_throughput_series`.
    /// Used by the `throughput_trace` experiment to show the interference
    /// regimes inside an epoch.
    pub trace_interval_secs: Option<f64>,
    /// Hot-set skew: the first `hot_shards` shards of the dataset are
    /// re-read this many extra times per epoch, interleaved into the
    /// shuffled order. 0 (the default) keeps the uniform one-pass epoch.
    /// Models a second job (or a weighted sampler) hammering a subset of
    /// the dataset — the contention scenario where eviction policies that
    /// track reuse separate from blind first-fit.
    pub hot_shards: usize,
    /// Extra reads per hot shard per epoch (see [`Self::hot_shards`]).
    pub hot_replays: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            readers: 8,
            chunk_bytes: 256 << 10,
            prefetch_batches: 4,
            seed: 1,
            trace_interval_secs: None,
            hot_shards: 0,
            hot_replays: 0,
        }
    }
}

impl PipelineConfig {
    /// Same configuration with another trial seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One simulated storage device.
#[derive(Debug, Clone, Serialize)]
pub struct DeviceSpec {
    /// Device label ("lustre", "ssd", "ram").
    pub name: String,
    /// Aggregate bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Per-stream rate cap for bulk pipelined streams, bytes/s.
    pub stream_cap: f64,
    /// Per-stream rate cap for synchronous chunk reads, bytes/s. On
    /// Lustre, a QD-1 stream of ~256 KiB reads tops out far below a
    /// read-ahead bulk stream; this asymmetry is what the full-file fetch
    /// exploits.
    pub sync_stream_cap: f64,
    /// Median per-op latency, seconds.
    pub latency_median: f64,
    /// Lognormal sigma of the latency.
    pub latency_sigma: f64,
    /// Write cost multiplier (1.0 = writes as fast as reads).
    pub write_weight: f64,
    /// Whether the Markov interference process modulates this device.
    pub interference: bool,
}

/// The simulated Frontera node (§II experimental setup): a Lustre client
/// below a 240 GB SATA SSD with a 115 GiB usable partition.
#[derive(Debug, Clone, Serialize)]
pub struct EnvConfig {
    /// The shared PFS as seen by one compute node.
    pub lustre: DeviceSpec,
    /// Node-local SSD (XFS).
    pub ssd: DeviceSpec,
    /// Optional RAM tier (multi-level ablation).
    pub ram: DeviceSpec,
    /// Median MDS service time, seconds.
    pub mds_service_median: f64,
    /// MDS service-time lognormal sigma.
    pub mds_sigma: f64,
    /// Enable the background-load interference chain on Lustre.
    pub interference: bool,
    /// Fair-share weight of a bulk sequential stream (MONARCH's full-file
    /// placement fetch) relative to a synchronous 256 KiB chunk read. Deep
    /// read-ahead lets one streaming reader keep many RPCs in flight,
    /// which is what lets the placement copy race ahead of the chunk
    /// readers within a shard.
    pub bulk_stream_share: f64,
    /// Volume expansion of TensorFlow's `Dataset.cache()` files relative
    /// to the packed TFRecord source: the cache materialises parsed
    /// records, so both the epoch-1 spill and every later epoch's reads
    /// move proportionally more bytes. This is why the paper's
    /// vanilla-caching epochs 2–3 run slower than vanilla-local despite
    /// both reading the same SSD. MONARCH copies the *original* files and
    /// does not pay this.
    pub cache_expansion: f64,
    /// Optional deterministic fault schedule (tier outages, error-rate
    /// windows, SSD-full, MDS stalls) injected at the device layer. `None`
    /// (the default) leaves every run bit-identical to a fault-free build.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub fault_plan: Option<FaultPlan>,
}

impl Default for EnvConfig {
    fn default() -> Self {
        Self {
            lustre: DeviceSpec {
                name: "lustre".into(),
                // Single-client Lustre throughput before interference.
                bandwidth: 440e6,
                stream_cap: 150e6,
                sync_stream_cap: 45e6,
                latency_median: 1.3e-3,
                latency_sigma: 0.6,
                write_weight: 1.0,
                interference: true,
            },
            ssd: DeviceSpec {
                name: "ssd".into(),
                // SATA SSD: ~520 MB/s reads; writes cost ~1.6× drain.
                bandwidth: 520e6,
                stream_cap: 260e6,
                sync_stream_cap: 200e6,
                latency_median: 80e-6,
                latency_sigma: 0.2,
                write_weight: 1.05,
                interference: false,
            },
            ram: DeviceSpec {
                name: "ram".into(),
                bandwidth: 8e9,
                stream_cap: 4e9,
                sync_stream_cap: 4e9,
                latency_median: 2e-6,
                latency_sigma: 0.05,
                write_weight: 1.0,
                interference: false,
            },
            mds_service_median: 16e-3,
            mds_sigma: 0.4,
            interference: true,
            bulk_stream_share: 12.0,
            cache_expansion: 1.15,
            fault_plan: None,
        }
    }
}

impl EnvConfig {
    /// A congested shared PFS: the synchronous-chunk per-stream rate
    /// collapses (deep client queues on a busy Lustre push a QD-1 256 KiB
    /// read stream down to ~12 MB/s) while bulk read-ahead streams keep
    /// most of their throughput. This is the regime where eviction
    /// policies pay off: converting repeated synchronous PFS chunk reads
    /// into a few bulk placement fetches is worth far more than the
    /// SSD write-back traffic it costs. Used by the `sim_policy` bench
    /// scenario and `scripts/check.sh policy`.
    #[must_use]
    pub fn congested_pfs() -> Self {
        let mut env = Self::default();
        env.lustre.sync_stream_cap = 12e6;
        env
    }
}

/// A MONARCH tier in simulation: which device backs it and its quota.
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub enum SimTierKind {
    /// Backed by the RAM device.
    Ram,
    /// Backed by the local SSD device.
    Ssd,
}

/// MONARCH configuration for simulated runs.
#[derive(Debug, Clone, Serialize)]
pub struct MonarchSimConfig {
    /// Local tiers fastest-first, each `(kind, capacity_bytes)`; Lustre is
    /// implicitly the final source tier.
    pub tiers: Vec<(SimTierKind, u64)>,
    /// Background copy workers (paper: 6).
    pub pool_threads: usize,
    /// Eviction/placement policy triple, selected by kind (the composed
    /// `PolicyEngine` the real engine uses; first-fit is the paper
    /// baseline).
    pub policy: PolicyKind,
    /// Admission gate in front of demand and prefetch copies.
    pub admission: AdmissionKind,
    /// Fetch the whole file on first partial read (paper's optimisation;
    /// disabling it is the ablation).
    pub full_file_fetch: bool,
    /// Placement option (i) of §III-A: stage the dataset onto the local
    /// tiers *before* training starts, instead of on demand during the
    /// first epoch (the paper's choice, option (ii)). The staging time is
    /// reported separately from the epoch times, like the
    /// metadata-initialisation phase.
    pub prestage: bool,
    /// Record a virtual-time causal span tree for every N-th chunk read
    /// (plus the copy it triggers) and export it in
    /// `RunReport::trace_json`. 0 (the paper default) disables tracing.
    pub trace_sample_every_n: u64,
    /// Clairvoyant prefetch lookahead: each epoch's shuffled shard order
    /// is handed to the placement layer as an access plan, and up to this
    /// many plan entries ahead of the foreground read cursor are staged
    /// through a low-priority copy lane (demand copies preempt them).
    /// 0 (the paper default) keeps the purely reactive behaviour.
    pub prefetch_lookahead: usize,
}

impl MonarchSimConfig {
    /// The paper's configuration: one SSD tier with 115 GiB, 6 copy
    /// threads, first-fit, full-file fetch on.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            tiers: vec![(SimTierKind::Ssd, 115 << 30)],
            pool_threads: 6,
            policy: PolicyKind::FirstFit,
            admission: AdmissionKind::AdmitAll,
            full_file_fetch: true,
            prestage: false,
            trace_sample_every_n: 0,
            prefetch_lookahead: 0,
        }
    }

    /// The paper default with virtual-time tracing on for every read —
    /// what the sim side of the trace experiments uses.
    #[must_use]
    pub fn with_tracing() -> Self {
        Self {
            trace_sample_every_n: 1,
            ..Self::paper_default()
        }
    }

    /// Same but with a custom SSD quota (capacity sweeps).
    #[must_use]
    pub fn with_ssd_capacity(capacity: u64) -> Self {
        Self {
            tiers: vec![(SimTierKind::Ssd, capacity)],
            ..Self::paper_default()
        }
    }

    /// The paper default with clairvoyant prefetching at the given
    /// lookahead — the `prefetch` sim mode.
    #[must_use]
    pub fn with_prefetch(lookahead: usize) -> Self {
        Self {
            prefetch_lookahead: lookahead,
            ..Self::paper_default()
        }
    }

    /// The policy-ablation configuration: a capped SSD tier, clairvoyant
    /// lookahead of 64 so eviction policies see an access plan, and the
    /// given policy triple. Pair with [`EnvConfig::congested_pfs`] and a
    /// quota of half the dataset for the partial-cache scenario.
    #[must_use]
    pub fn policy_ablation(policy: PolicyKind, capacity: u64) -> Self {
        Self {
            policy,
            prefetch_lookahead: 64,
            ..Self::with_ssd_capacity(capacity)
        }
    }
}

/// The experimental setups of §II/§IV.
#[derive(Debug, Clone, Serialize)]
pub enum Setup {
    /// Dataset served from the Lustre PFS only.
    VanillaLustre,
    /// Dataset pre-staged on the local SSD (upper bound; only possible
    /// when it fits).
    VanillaLocal,
    /// TensorFlow `Dataset.cache(local_dir)`: epoch 1 reads Lustre and
    /// spills every chunk to the SSD; later epochs read the SSD. Requires
    /// the dataset to fit locally.
    VanillaCaching,
    /// The MONARCH middleware.
    Monarch(MonarchSimConfig),
}

impl Setup {
    /// Label used in reports (matches the paper's legends).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Setup::VanillaLustre => "vanilla-lustre",
            Setup::VanillaLocal => "vanilla-local",
            Setup::VanillaCaching => "vanilla-caching",
            Setup::Monarch(_) => "monarch",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = PipelineConfig::default();
        assert_eq!(p.chunk_bytes, 256 << 10);
        assert_eq!((p.hot_shards, p.hot_replays), (0, 0), "hot set is opt-in");
        let m = MonarchSimConfig::paper_default();
        assert_eq!(m.admission, AdmissionKind::AdmitAll);
        assert_eq!(m.pool_threads, 6);
        assert_eq!(m.tiers, vec![(SimTierKind::Ssd, 115u64 << 30)]);
        assert!(m.full_file_fetch);
        assert_eq!(m.trace_sample_every_n, 0, "sim tracing is opt-in");
        assert_eq!(m.prefetch_lookahead, 0, "prefetch is opt-in");
        assert_eq!(MonarchSimConfig::with_tracing().trace_sample_every_n, 1);
        assert_eq!(MonarchSimConfig::with_prefetch(32).prefetch_lookahead, 32);
        let a = MonarchSimConfig::policy_ablation(PolicyKind::LruEvict, 1 << 20);
        assert_eq!(a.policy, PolicyKind::LruEvict);
        assert_eq!(a.prefetch_lookahead, 64);
        assert_eq!(a.tiers, vec![(SimTierKind::Ssd, 1u64 << 20)]);
    }

    #[test]
    fn labels() {
        assert_eq!(Setup::VanillaLustre.label(), "vanilla-lustre");
        assert_eq!(
            Setup::Monarch(MonarchSimConfig::paper_default()).label(),
            "monarch"
        );
    }

    #[test]
    fn env_sanity() {
        let e = EnvConfig::default();
        assert!(e.ssd.bandwidth > e.lustre.bandwidth * 0.5);
        assert!(e.ram.bandwidth > e.ssd.bandwidth);
        assert!(e.lustre.interference && !e.ssd.interference);
        assert!(e.ssd.write_weight > 1.0);
        let c = EnvConfig::congested_pfs();
        assert!(c.lustre.sync_stream_cap < e.lustre.sync_stream_cap / 3.0);
        assert_eq!(c.lustre.stream_cap, e.lustre.stream_cap);
    }
}
