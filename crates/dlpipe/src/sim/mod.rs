//! Discrete-event training driver.
//!
//! [`SimTrainer`] wires the input pipeline, the model compute profile, the
//! `simfs` device models and (for the MONARCH setup) the real
//! `monarch-core` decision components into one event-driven world, then
//! runs a configurable number of epochs in virtual time.
//!
//! ## Actors
//!
//! - **Readers** (tf.data parallel interleave): each works through its
//!   share of the epoch's shuffled shard list, issuing one `chunk_bytes`
//!   read at a time; the first chunk of a Lustre-served shard pays an MDS
//!   open. Completed chunks feed the prefetch buffer.
//! - **Trainer**: consumes `batch_size` samples per step from the buffer,
//!   holding the (virtual) accelerators for the model's step time.
//!   A full prefetch buffer back-pressures the readers.
//! - **Placement workers** (MONARCH): the paper's 6-thread copy pool,
//!   modelled as K servers; each task reads a whole shard from the PFS and
//!   writes it to the chosen tier, contending with the readers on both
//!   devices. Placement decisions, quota accounting and the file-state
//!   machine are the *real* `monarch_core` structures.
//! - **Interference**: a Markov chain rescaling the PFS bandwidth.

pub mod cluster;
mod world;

pub use cluster::{ClusterConfig, ClusterReport, ClusterTrainer, Sharding};
pub use world::SimTrainer;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EnvConfig, MonarchSimConfig, PipelineConfig, Setup};
    use crate::geometry::DatasetGeom;
    use crate::models::ModelProfile;

    /// A fast miniature workload: ~1.6 GiB, 16k samples, shards of 64.
    fn mini() -> DatasetGeom {
        DatasetGeom::miniature("mini", 16_384, 42)
    }

    fn mini_model() -> ModelProfile {
        // Tiny compute so runs are I/O-bound (LeNet-like).
        ModelProfile {
            name: "tiny".into(),
            per_sample_step: 50e-6,
            gpu_fraction: 0.7,
            cpu_per_sample: 60e-6,
            batch_size: 128,
        }
    }

    fn run(setup: Setup, epochs: usize, seed: u64) -> crate::report::RunReport {
        let trainer = SimTrainer::new(
            setup,
            mini(),
            mini_model(),
            PipelineConfig::default().with_seed(seed),
            EnvConfig::default(),
        );
        trainer.run(epochs)
    }

    #[test]
    fn vanilla_lustre_reads_everything_from_pfs_every_epoch() {
        let r = run(Setup::VanillaLustre, 2, 1);
        assert_eq!(r.epochs.len(), 2);
        let total = mini().total_bytes();
        for e in &r.epochs {
            let pfs = &e.devices[r.pfs_device];
            assert_eq!(pfs.bytes_read(), total, "epoch {} bytes", e.epoch);
            assert!(e.seconds > 0.0);
        }
        // Op count = ceil-sum of chunk reads.
        let expect_ops = mini().chunk_reads_per_epoch(256 << 10);
        assert_eq!(r.pfs_ops_epoch(0), expect_ops);
    }

    #[test]
    fn vanilla_local_never_touches_pfs() {
        let r = run(Setup::VanillaLocal, 2, 1);
        for e in &r.epochs {
            assert_eq!(e.devices[r.pfs_device].data_ops(), 0);
        }
        // And it is faster than Lustre for an I/O-bound model.
        let lustre = run(Setup::VanillaLustre, 2, 1);
        assert!(
            r.total_seconds() < lustre.total_seconds(),
            "local {} !< lustre {}",
            r.total_seconds(),
            lustre.total_seconds()
        );
    }

    #[test]
    fn caching_pays_epoch1_then_serves_locally() {
        let r = run(Setup::VanillaCaching, 3, 1);
        let lustre = run(Setup::VanillaLustre, 3, 1);
        // Epoch 1 reads the PFS fully and costs more than vanilla-lustre's
        // first epoch (extra cache writes).
        assert_eq!(
            r.epochs[0].devices[r.pfs_device].bytes_read(),
            mini().total_bytes()
        );
        assert!(r.epochs[0].seconds >= lustre.epochs[0].seconds * 0.95);
        // Epochs 2..: PFS idle.
        for e in &r.epochs[1..] {
            assert_eq!(e.devices[r.pfs_device].data_ops(), 0, "epoch {}", e.epoch);
            assert!(e.seconds < lustre.epochs[e.epoch].seconds);
        }
    }

    #[test]
    fn monarch_full_fit_places_everything() {
        let cfg = MonarchSimConfig::with_ssd_capacity(4 << 30); // dataset ≈1.6 GiB
        let r = run(Setup::Monarch(cfg), 3, 1);
        // Epochs 2-3 read (almost) nothing from the PFS: every shard was
        // placed during epoch 1.
        for e in &r.epochs[1..] {
            let pfs = e.devices[r.pfs_device].data_ops();
            assert!(
                pfs < 20,
                "epoch {} still sent {pfs} ops to the PFS",
                e.epoch
            );
        }
        // Total beats vanilla-lustre.
        let lustre = run(Setup::VanillaLustre, 3, 1);
        assert!(r.total_seconds() < lustre.total_seconds());
        // Metadata init was simulated and reported.
        assert!(r.metadata_init_seconds > 0.0);
    }

    #[test]
    fn monarch_partial_fit_bounded_by_quota() {
        let total = mini().total_bytes();
        let cap = total / 2;
        let cfg = MonarchSimConfig::with_ssd_capacity(cap);
        let r = run(Setup::Monarch(cfg), 3, 1);
        // Epochs 2-3 still send ops to the PFS, but fewer than all of them.
        let all_ops = mini().chunk_reads_per_epoch(256 << 10);
        for e in &r.epochs[1..] {
            let pfs = e.devices[r.pfs_device].reads();
            assert!(pfs > all_ops / 4, "too few PFS ops: {pfs}");
            assert!(pfs < all_ops, "no reduction: {pfs} of {all_ops}");
        }
        // SSD bytes written never exceed the quota (plus one shard slack
        // is *not* allowed — reservations are strict).
        let ssd_written: u64 = r.epochs.iter().map(|e| e.devices[0].bytes_written()).sum();
        assert!(ssd_written <= cap, "wrote {ssd_written} > quota {cap}");
    }

    #[test]
    fn monarch_partial_fit_pays_off_after_epoch_one() {
        // At miniature scale the epoch-1 placement investment takes a few
        // epochs to amortise (the paper's full-scale runs amortise within
        // 3); the invariant is that steady-state epochs beat vanilla-lustre
        // by a healthy margin while epoch 1 stays within bounds. Uses a
        // geometry with enough shards per reader (12) that stragglers do
        // not mask the effect.
        let geom = DatasetGeom::miniature("mini-partial", 49_152, 42);
        let cfg = MonarchSimConfig::with_ssd_capacity(geom.total_bytes() * 3 / 5);
        let mk = |setup| {
            SimTrainer::new(
                setup,
                geom.clone(),
                mini_model(),
                PipelineConfig::default().with_seed(1),
                EnvConfig::default(),
            )
            .run(3)
        };
        let m = mk(Setup::Monarch(cfg));
        let l = mk(Setup::VanillaLustre);
        // Steady-state epochs send roughly (1 - capacity fraction) of the
        // chunk reads to the PFS — the paper's §IV-A structure (≈360k of
        // 798k ops at a 57.5% fit).
        let all_ops = l.pfs_ops_epoch(1);
        for e in 1..3 {
            let frac = m.pfs_ops_epoch(e) as f64 / all_ops as f64;
            assert!(
                (0.25..0.55).contains(&frac),
                "epoch {e}: PFS op fraction {frac} out of range for a 60% fit"
            );
        }
        // And steady-state epochs are faster (the margin grows with scale;
        // at this miniature scale static-interleave stragglers damp it).
        let m_steady: f64 = m.epochs[1..].iter().map(|e| e.seconds).sum();
        let l_steady: f64 = l.epochs[1..].iter().map(|e| e.seconds).sum();
        assert!(
            m_steady < l_steady,
            "steady-state epochs should win: monarch {m_steady} vs lustre {l_steady}"
        );
        assert!(
            m.total_seconds() < l.total_seconds() * 1.15,
            "epoch-1 investment must stay bounded: {} vs {}",
            m.total_seconds(),
            l.total_seconds()
        );
    }

    #[test]
    fn clairvoyant_prefetch_beats_caching_and_reactive_in_epoch_one() {
        let cap = 4 << 30; // dataset ≈1.6 GiB fits
        let pf = run(
            Setup::Monarch(MonarchSimConfig {
                prefetch_lookahead: 64,
                ..MonarchSimConfig::with_ssd_capacity(cap)
            }),
            1,
            1,
        );
        let reactive = run(
            Setup::Monarch(MonarchSimConfig::with_ssd_capacity(cap)),
            1,
            1,
        );
        let caching = run(Setup::VanillaCaching, 1, 1);
        // The plan-driven run staged files ahead of the readers and served
        // foreground reads from the SSD within epoch 1.
        let t = pf.telemetry.as_ref().expect("monarch telemetry");
        assert!(t.stats.prefetches_scheduled > 0, "nothing was prefetched");
        assert!(
            t.stats.prefetch_hits > 0,
            "no foreground read was served by a staged copy: {:?}",
            t.stats
        );
        assert!(
            t.queue_wait_prefetch.count > 0,
            "prefetch lane recorded no queue waits"
        );
        // Epoch 1 beats vanilla-caching's epoch 1 (which reads the whole
        // dataset synchronously from Lustre while spilling), and the
        // reactive middleware (which only copies shards after first touch).
        assert!(
            pf.epochs[0].seconds < caching.epochs[0].seconds,
            "prefetch epoch 1 ({}) should beat vanilla-caching ({})",
            pf.epochs[0].seconds,
            caching.epochs[0].seconds
        );
        assert!(
            pf.epochs[0].seconds < reactive.epochs[0].seconds,
            "prefetch epoch 1 ({}) should beat reactive monarch ({})",
            pf.epochs[0].seconds,
            reactive.epochs[0].seconds
        );
        // Lookahead 0 is byte-identical to the reactive run: same virtual
        // time, same device traffic, no prefetch counters.
        let off = run(
            Setup::Monarch(MonarchSimConfig {
                prefetch_lookahead: 0,
                ..MonarchSimConfig::with_ssd_capacity(cap)
            }),
            1,
            1,
        );
        assert_eq!(off.epochs[0].seconds, reactive.epochs[0].seconds);
        assert_eq!(
            off.telemetry.as_ref().unwrap().stats.prefetches_scheduled,
            0
        );
    }

    #[test]
    fn monarch_traced_run_exports_flow_linked_virtual_spans() {
        let r = run(Setup::Monarch(MonarchSimConfig::with_tracing()), 1, 1);
        let json = r.trace_json.as_deref().expect("traced run exports JSON");
        // Foreground tree, background copy pipeline, and the flow
        // endpoints linking them — all in virtual time.
        for needle in [
            "\"driver_pread\"",
            "\"metadata_lookup\"",
            "\"tier_resolve\"",
            "\"copy_scheduled\"",
            "\"queue_wait\"",
            "\"placement_decide\"",
            "\"copy_read\"",
            "\"copy_write\"",
            "\"copy_exec\"",
            "\"ph\":\"s\"",
            "\"ph\":\"f\"",
            "\"outcome\":\"completed\"",
            "sim-reader-0",
            "sim-copy-0",
        ] {
            assert!(json.contains(needle), "missing {needle}");
        }
        // The paper-default configuration records nothing.
        let off = run(Setup::Monarch(MonarchSimConfig::paper_default()), 1, 1);
        assert!(off.trace_json.is_none(), "tracing must be opt-in");
    }

    #[test]
    fn no_op_fault_plan_is_bit_identical_to_a_healthy_run() {
        use simfs::{FaultKind, FaultPlan};
        let cfg = MonarchSimConfig::with_ssd_capacity(4 << 30);
        let healthy = run(Setup::Monarch(cfg.clone()), 2, 1);
        // A plan whose only window never fires (0% error rate) must not
        // perturb the virtual clock or any device counter: fault checks
        // hash their own seed and never touch the shared RNG.
        let env = EnvConfig {
            fault_plan: Some(FaultPlan::new(3).with_window(
                "ssd",
                5.0,
                1e9,
                FaultKind::ErrorRate(0.0),
            )),
            ..EnvConfig::default()
        };
        let marked = SimTrainer::new(
            Setup::Monarch(cfg),
            mini(),
            mini_model(),
            PipelineConfig::default().with_seed(1),
            env,
        )
        .run(2);
        assert_eq!(marked.total_seconds(), healthy.total_seconds());
        assert_eq!(marked.pfs_ops(), healthy.pfs_ops());
        // And the window ledger still reports the healthy consumption rate.
        assert_eq!(marked.fault_windows.len(), 1);
        assert!(marked.fault_windows[0].samples_per_s > 0.0);
    }

    #[test]
    fn ssd_outage_mid_epoch_degrades_to_lustre_and_recovers() {
        use simfs::{FaultKind, FaultPlan};
        let cap = 4 << 30; // dataset ≈1.6 GiB fits entirely
        let quiet = EnvConfig {
            interference: false,
            ..EnvConfig::default()
        };
        let mk = |setup: Setup, plan: Option<FaultPlan>| {
            SimTrainer::new(
                setup,
                mini(),
                mini_model(),
                PipelineConfig::default().with_seed(1),
                EnvConfig {
                    fault_plan: plan,
                    ..quiet.clone()
                },
            )
            .run(3)
        };
        // Healthy run fixes the epoch boundaries; the outage window is the
        // middle half of epoch 2, when every shard is SSD-resident.
        let healthy = mk(
            Setup::Monarch(MonarchSimConfig::with_ssd_capacity(cap)),
            None,
        );
        let e1_start = healthy.metadata_init_seconds + healthy.epochs[0].seconds;
        let (start, end) = (
            e1_start + 0.25 * healthy.epochs[1].seconds,
            e1_start + 0.75 * healthy.epochs[1].seconds,
        );
        let plan = FaultPlan::new(9).with_window("ssd", start, end, FaultKind::Outage);
        let faulted = mk(
            Setup::Monarch(MonarchSimConfig::with_ssd_capacity(cap)),
            Some(plan.clone()),
        );
        // No-fast-tier baseline over the same wall-clock window: the plan
        // rides along purely as a throughput marker (vanilla-lustre never
        // touches the SSD).
        let baseline = mk(Setup::VanillaLustre, Some(plan));

        // The breaker tripped, probed, and re-admitted the tier.
        let stats = &faulted.telemetry.as_ref().expect("telemetry").stats;
        assert!(stats.tier_quarantines >= 1, "{stats:?}");
        assert!(stats.tier_recoveries >= 1, "{stats:?}");
        assert!(stats.degraded_reads > 0, "{stats:?}");
        let health = faulted
            .telemetry
            .as_ref()
            .unwrap()
            .health
            .as_ref()
            .expect("health snapshot");
        assert!(
            health.tiers.iter().all(|t| t.state == "closed"),
            "tier must be re-admitted after the outage: {health:?}"
        );

        // During the outage, throughput degrades to within 10% of the
        // no-fast-tier baseline (reads fall back to Lustre)...
        let f_rate = faulted.fault_windows[0].samples_per_s;
        let b_rate = baseline.fault_windows[0].samples_per_s;
        assert!(
            f_rate >= b_rate * 0.9,
            "degraded throughput {f_rate} not within 10% of baseline {b_rate}"
        );
        // ...which is a real degradation against the healthy run...
        assert!(
            faulted.epochs[1].seconds > healthy.epochs[1].seconds * 1.1,
            "outage epoch should slow down: {} vs healthy {}",
            faulted.epochs[1].seconds,
            healthy.epochs[1].seconds
        );
        // ...and the post-recovery epoch returns to near-healthy speed.
        assert!(
            faulted.epochs[2].seconds < healthy.epochs[2].seconds * 1.25,
            "post-recovery epoch should match healthy: {} vs {}",
            faulted.epochs[2].seconds,
            healthy.epochs[2].seconds
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(Setup::VanillaLustre, 2, 7);
        let b = run(Setup::VanillaLustre, 2, 7);
        assert_eq!(a.total_seconds(), b.total_seconds());
        assert_eq!(a.pfs_ops(), b.pfs_ops());
        let c = run(Setup::VanillaLustre, 2, 8);
        assert_ne!(a.total_seconds(), c.total_seconds());
    }

    #[test]
    fn compute_bound_model_is_storage_insensitive() {
        let heavy = ModelProfile {
            name: "heavy".into(),
            per_sample_step: 2e-3, // dwarfs any I/O path
            gpu_fraction: 0.9,
            cpu_per_sample: 30e-6,
            batch_size: 128,
        };
        let mk = |setup| {
            SimTrainer::new(
                setup,
                mini(),
                heavy.clone(),
                PipelineConfig::default(),
                EnvConfig::default(),
            )
            .run(2)
        };
        let lustre = mk(Setup::VanillaLustre);
        let local = mk(Setup::VanillaLocal);
        let ratio = lustre.total_seconds() / local.total_seconds();
        assert!(
            (0.97..1.05).contains(&ratio),
            "ResNet-like should be flat: {ratio}"
        );
        // And utilisation reflects compute dominance.
        assert!(lustre.gpu_util() > 0.8);
    }

    #[test]
    fn gpu_util_rises_with_faster_storage() {
        let lustre = run(Setup::VanillaLustre, 2, 3);
        let local = run(Setup::VanillaLocal, 2, 3);
        assert!(local.gpu_util() > lustre.gpu_util());
        assert!(local.cpu_util() > lustre.cpu_util());
    }

    #[test]
    fn sample_conservation() {
        // Every epoch consumes exactly the dataset's record count — the
        // trainer must neither starve nor over-consume.
        let r = run(Setup::VanillaLustre, 1, 5);
        let e = &r.epochs[0];
        // All bytes were read exactly once.
        assert_eq!(e.devices[r.pfs_device].bytes_read(), mini().total_bytes());
    }

    /// The `sim_policy` scenario: fast tier at half the dataset, congested
    /// PFS, lookahead 64, three epochs.
    fn run_policy(
        policy: monarch_core::config::PolicyKind,
        pipeline: PipelineConfig,
    ) -> crate::report::RunReport {
        let cap = mini().total_bytes() / 2;
        SimTrainer::new(
            Setup::Monarch(MonarchSimConfig::policy_ablation(policy, cap)),
            mini(),
            mini_model(),
            pipeline,
            EnvConfig::congested_pfs(),
        )
        .run(3)
    }

    #[test]
    fn eviction_policies_beat_first_fit_on_partial_cache() {
        use monarch_core::config::PolicyKind;
        let p = || PipelineConfig::default().with_seed(1);
        let ff = run_policy(PolicyKind::FirstFit, p());
        let lru = run_policy(PolicyKind::LruEvict, p());
        let clair = run_policy(PolicyKind::Clairvoyant, p());
        // The no-eviction baseline fills its half-dataset quota during
        // epoch 1 and then strands the rest of the shards on the congested
        // PFS for every later epoch.
        assert_eq!(ff.telemetry.as_ref().unwrap().stats.evictions, 0);
        assert!(lru.telemetry.as_ref().unwrap().stats.evictions > 0);
        // Observed 17.7s vs 44.7s — assert with a wide safety margin.
        assert!(
            lru.total_seconds() < ff.total_seconds() * 0.6,
            "lru {} !< 0.6 × first-fit {}",
            lru.total_seconds(),
            ff.total_seconds()
        );
        // The clairvoyant policy, which evicts the plan-farthest file,
        // must at least match plain LRU (observed 17.2s vs 17.7s).
        assert!(
            clair.total_seconds() <= lru.total_seconds() * 1.05,
            "clairvoyant {} !<= lru {}",
            clair.total_seconds(),
            lru.total_seconds()
        );
        // Recycling the quota converts synchronous PFS chunk reads into
        // bulk placement fetches (observed 9418 → 1159 ops).
        assert!(
            lru.pfs_ops() < ff.pfs_ops() / 3,
            "lru pfs ops {} !< first-fit {} / 3",
            lru.pfs_ops(),
            ff.pfs_ops()
        );
    }

    #[test]
    fn hot_set_contention_rewards_reuse_tracking() {
        use monarch_core::config::PolicyKind;
        // A second job hammering the first 4 shards 4 extra times per
        // epoch: frequency-aware eviction keeps the hot set resident while
        // first-fit's frozen placement thrashes on the PFS (observed 26.1s
        // vs 58.7s).
        let hot = || PipelineConfig {
            hot_shards: 4,
            hot_replays: 4,
            ..PipelineConfig::default().with_seed(1)
        };
        let ff = run_policy(PolicyKind::FirstFit, hot());
        let lfu = run_policy(PolicyKind::Lfu, hot());
        assert!(lfu.telemetry.as_ref().unwrap().stats.evictions > 0);
        assert!(
            lfu.total_seconds() < ff.total_seconds() * 0.6,
            "lfu {} !< 0.6 × first-fit {}",
            lfu.total_seconds(),
            ff.total_seconds()
        );
    }

    #[test]
    fn policy_runs_are_deterministic() {
        use monarch_core::config::PolicyKind;
        // The learned scorer trains online from the access stream; same
        // seed must still reproduce bit-identical virtual time.
        let a = run_policy(PolicyKind::Learned, PipelineConfig::default().with_seed(1));
        let b = run_policy(PolicyKind::Learned, PipelineConfig::default().with_seed(1));
        assert_eq!(a.total_seconds(), b.total_seconds());
        assert_eq!(a.pfs_ops(), b.pfs_ops());
    }
}
