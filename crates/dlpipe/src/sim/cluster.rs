//! Distributed-training extension (paper §VI, "Distributed training").
//!
//! Simulates synchronous data-parallel training across `N` compute nodes,
//! each with its own local SSD and — under the MONARCH setup — its own
//! middleware instance, all sharing one Lustre file system:
//!
//! - **PFS backend congestion.** Each node reaches Lustre through its own
//!   client link (a `PsDevice` with the single-node calibration), but the
//!   file system's object servers have a finite aggregate bandwidth; when
//!   the sum of active client links exceeds it, every link is scaled down
//!   proportionally. One MDS serves the whole cluster (FIFO).
//! - **Data parallelism.** Each epoch the shard list is partitioned across
//!   nodes. Every training step is a global barrier: it starts once every
//!   node has buffered its per-node share of the batch (stragglers stall
//!   the whole cluster, as in synchronous SGD).
//! - **Sharding policy** ([`Sharding`]): `Static` gives node *k* the same
//!   partition every epoch (perfect cache locality for MONARCH);
//!   `Reshuffled` re-partitions every epoch (the hard case the paper
//!   flags: "multiple nodes will need access to different data shards").

use std::collections::VecDeque;

use monarch_core::hash::FxHashMap;
use simfs::clock::SimTime;
use simfs::interference::Interference;
use simfs::psdev::{Kind, PsDevice};
use simfs::rng::SimRng;
use simfs::{DeviceStats, EventQueue, Mds};

use crate::config::{EnvConfig, PipelineConfig};
use crate::geometry::DatasetGeom;
use crate::models::ModelProfile;
use serde::Serialize;

/// How shards are assigned to nodes each epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Sharding {
    /// Node `k` reads the same partition every epoch.
    Static,
    /// A fresh global shuffle is re-partitioned every epoch.
    Reshuffled,
}

/// Cluster-run configuration.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterConfig {
    /// Number of compute nodes.
    pub nodes: usize,
    /// Per-node MONARCH SSD quota in bytes; `None` = vanilla-lustre (no
    /// caching anywhere).
    pub monarch_ssd_capacity: Option<u64>,
    /// Copy workers per node (paper: 6).
    pub pool_threads: usize,
    /// Shard-to-node assignment policy.
    pub sharding: Sharding,
    /// Aggregate bandwidth of the PFS object servers shared by the whole
    /// cluster, bytes/s. The default (2.2 GB/s, five times one client
    /// link) models a modest Lustre deployment.
    pub pfs_backend_bandwidth: f64,
    /// FanStore-style peer cache: a consistent-hash [`ShardMap`] makes
    /// each shard cacheable only on its owner node, every node streams
    /// the *whole* dataset each epoch (global shuffle), and remote hits
    /// travel node-to-node over a dedicated peer NIC instead of
    /// re-reading the PFS. Requires `monarch_ssd_capacity`.
    ///
    /// [`ShardMap`]: monarch_core::ShardMap
    pub peer_cache: bool,
    /// Node-to-node NIC bandwidth, bytes/s (peer-cache mode only).
    pub peer_bandwidth: f64,
    /// Consistent-hash seed for the shard → owner assignment; all nodes
    /// of a job agree on it (peer-cache mode only).
    pub shard_seed: u64,
}

impl ClusterConfig {
    /// Vanilla-lustre on `nodes` nodes.
    #[must_use]
    pub fn vanilla(nodes: usize) -> Self {
        Self {
            nodes,
            monarch_ssd_capacity: None,
            pool_threads: 6,
            sharding: Sharding::Static,
            pfs_backend_bandwidth: 2.2e9,
            peer_cache: false,
            peer_bandwidth: 1.2e9,
            shard_seed: 42,
        }
    }

    /// MONARCH with the paper's 115 GiB per-node SSD tier.
    #[must_use]
    pub fn monarch(nodes: usize, sharding: Sharding) -> Self {
        Self {
            monarch_ssd_capacity: Some(115 << 30),
            sharding,
            ..Self::vanilla(nodes)
        }
    }

    /// MONARCH with the distributed peer cache on: shard ownership via
    /// consistent hash, node-to-node serving of remote hits. `Static`
    /// keeps the owner assignment across epochs; `Reshuffled` rotates it
    /// every epoch (re-salted hash), forcing the caches to re-warm.
    #[must_use]
    pub fn monarch_peer(nodes: usize, sharding: Sharding) -> Self {
        Self {
            peer_cache: true,
            ..Self::monarch(nodes, sharding)
        }
    }
}

/// Per-epoch cluster measurements.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterEpoch {
    /// Epoch index.
    pub epoch: usize,
    /// Wall time of the epoch (barrier to barrier).
    pub seconds: f64,
    /// Chunk + copy reads that reached the PFS, summed over nodes.
    pub pfs_ops: u64,
    /// Bytes read from the PFS, summed over nodes.
    pub pfs_bytes: u64,
    /// Fraction of chunk reads served by node-local SSDs.
    pub local_hit_ratio: f64,
    /// Chunk reads served node-to-node from a peer's SSD, summed over
    /// nodes (peer-cache mode; 0 otherwise).
    pub peer_hits: u64,
    /// Bytes shipped node-to-node instead of read from the PFS.
    pub peer_bytes: u64,
    /// Chunk reads of peer-owned shards that fell back to the PFS
    /// because the owner had not cached them (yet).
    pub peer_fallbacks: u64,
}

/// Whole-run cluster measurements.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterReport {
    /// Configuration label.
    pub label: String,
    /// Nodes in the run.
    pub nodes: usize,
    /// Bytes the trainer consumes per epoch, summed over nodes (peer
    /// mode streams the whole dataset on every node, so this is
    /// `nodes × dataset`; partitioned modes consume the dataset once).
    pub bytes_per_epoch: u64,
    /// Per-epoch rows.
    pub epochs: Vec<ClusterEpoch>,
}

impl ClusterReport {
    /// Total seconds across epochs.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.epochs.iter().map(|e| e.seconds).sum()
    }

    /// Total PFS ops across epochs.
    #[must_use]
    pub fn pfs_ops(&self) -> u64 {
        self.epochs.iter().map(|e| e.pfs_ops).sum()
    }

    /// Aggregate training throughput of epoch `i`, bytes/s: what the
    /// whole cluster consumed divided by the epoch's wall time.
    #[must_use]
    pub fn agg_bytes_per_s(&self, i: usize) -> f64 {
        let e = &self.epochs[i];
        if e.seconds <= 0.0 {
            return 0.0;
        }
        self.bytes_per_epoch as f64 / e.seconds
    }

    /// Per-node PFS bytes of epoch `i`.
    #[must_use]
    pub fn pfs_bytes_per_node(&self, i: usize) -> f64 {
        self.epochs[i].pfs_bytes as f64 / self.nodes.max(1) as f64
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    NicWake { node: usize, gen: u64 },
    SsdWake { node: usize, gen: u64 },
    PnicWake { node: usize, gen: u64 },
    MdsDone { node: usize, reader: usize },
    StepDone,
    InterferenceShift,
}

#[derive(Debug, Clone, Copy)]
enum Purpose {
    Chunk {
        reader: usize,
        shard: usize,
    },
    CopyFetch {
        shard: usize,
    },
    CopyWrite {
        shard: usize,
    },
    /// Hop 1 of a peer transfer: the owner's NIC streams the chunk out
    /// of its SSD cache (runs on the *owner's* `pnic`).
    PeerSend {
        requester: usize,
        reader: usize,
        shard: usize,
    },
    /// Hop 2: the requester's NIC receives the chunk (its own `pnic`).
    PeerRecv {
        reader: usize,
        shard: usize,
    },
}

/// Where a chunk read is served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Route {
    /// The shared PFS (client NIC).
    Pfs,
    /// The PFS again, but only because the shard's owner had not cached
    /// it — counted as a peer fallback.
    PfsFallback,
    /// This node's own SSD cache.
    Local,
    /// A peer's SSD cache, over the peer NIC (owner node id).
    Peer(usize),
}

/// Peer NIC latency: node-to-node on a cluster fabric, far below a
/// Lustre client round-trip.
const PEER_LAT_MEDIAN: f64 = 2e-4;
const PEER_LAT_SIGMA: f64 = 0.3;

#[derive(Debug, Default)]
struct Reader {
    pending: VecDeque<usize>,
    cur: Option<(usize, u64)>,
    inflight: bool,
    done: bool,
}

/// Per-shard cache state on one node (a lean stand-in for the full
/// metadata container — one node never shares namespace with another).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShardState {
    Remote,
    Copying,
    Local,
}

struct Node {
    nic: PsDevice,
    ssd: PsDevice,
    /// Node-to-node NIC for peer-cache transfers: separate from the PFS
    /// client link, so peer traffic is neither counted as PFS bytes nor
    /// throttled by the shared-backend rebalance.
    pnic: PsDevice,
    nic_gen: Option<u64>,
    ssd_gen: Option<u64>,
    pnic_gen: Option<u64>,
    readers: Vec<Reader>,
    buffered: f64,
    /// MONARCH per-node state (None = vanilla).
    cache: Option<NodeCache>,
    /// Chunk reads served locally / remotely this run.
    local_chunks: u64,
    remote_chunks: u64,
    /// Chunk reads served from a peer's SSD / bytes shipped / fallbacks.
    peer_chunks: u64,
    peer_bytes: u64,
    fallback_chunks: u64,
}

struct NodeCache {
    state: Vec<ShardState>,
    quota_used: u64,
    quota_cap: u64,
    copy_queue: VecDeque<usize>,
    idle_workers: usize,
    pending_writes: usize,
    pool: usize,
}

/// The cluster world.
pub struct ClusterTrainer {
    cfg: ClusterConfig,
    geom: DatasetGeom,
    model: ModelProfile,
    pipeline: PipelineConfig,
    env: EnvConfig,
}

impl ClusterTrainer {
    /// Assemble a cluster trainer.
    #[must_use]
    pub fn new(
        cfg: ClusterConfig,
        geom: DatasetGeom,
        model: ModelProfile,
        pipeline: PipelineConfig,
        env: EnvConfig,
    ) -> Self {
        Self {
            cfg,
            geom,
            model,
            pipeline,
            env,
        }
    }

    /// Run `epochs` epochs and report.
    #[must_use]
    pub fn run(&self, epochs: usize) -> ClusterReport {
        ClusterWorld::build(self).run(epochs)
    }
}

struct ClusterWorld {
    q: EventQueue<Ev>,
    nodes: Vec<Node>,
    mds: Mds,
    interference: Interference,
    interference_fraction: f64,
    rng: SimRng,
    geom: DatasetGeom,
    chunk_bytes: u64,
    samples_per_byte: Vec<f64>,
    env: EnvConfig,
    cfg: ClusterConfig,
    model: ModelProfile,
    bulk_share: f64,
    /// Transfer purposes per (node, device-kind, id). Device kind: 0 =
    /// nic, 1 = ssd, 2 = peer nic.
    purpose: FxHashMap<(usize, u8, u64), Purpose>,
    /// Peer-cache mode: the consistent-hash shard → owner assignment
    /// (None when `peer_cache` is off or there is no cache).
    shard_map: Option<monarch_core::ShardMap>,
    /// Owner per shard for the current epoch (re-salted each epoch under
    /// `Sharding::Reshuffled`).
    owners: Vec<usize>,

    // Global synchronous trainer.
    computing: bool,
    consumed: f64,
    epoch_samples: f64,
    cur_batch: f64,

    epoch: usize,
    epochs_total: usize,
    epoch_start: SimTime,
    nic_snapshot: Vec<DeviceStats>,
    local_snapshot: Vec<(u64, u64)>,
    peer_snapshot: Vec<(u64, u64, u64)>,
    reports: Vec<ClusterEpoch>,
}

impl ClusterWorld {
    fn build(t: &ClusterTrainer) -> Self {
        let n = t.cfg.nodes.max(1);
        let peer_mode = t.cfg.peer_cache && t.cfg.monarch_ssd_capacity.is_some();
        let nodes = (0..n)
            .map(|_| Node {
                nic: PsDevice::new("nic", t.env.lustre.bandwidth, t.env.lustre.stream_cap),
                ssd: PsDevice::new("ssd", t.env.ssd.bandwidth, t.env.ssd.stream_cap),
                pnic: PsDevice::new("pnic", t.cfg.peer_bandwidth, t.env.lustre.stream_cap),
                nic_gen: None,
                ssd_gen: None,
                pnic_gen: None,
                readers: (0..t.pipeline.readers.max(1))
                    .map(|_| Reader::default())
                    .collect(),
                buffered: 0.0,
                cache: t.cfg.monarch_ssd_capacity.map(|cap| NodeCache {
                    state: vec![ShardState::Remote; t.geom.num_shards()],
                    quota_used: 0,
                    quota_cap: cap,
                    copy_queue: VecDeque::new(),
                    idle_workers: t.cfg.pool_threads.max(1),
                    pending_writes: 0,
                    pool: t.cfg.pool_threads.max(1),
                }),
                local_chunks: 0,
                remote_chunks: 0,
                peer_chunks: 0,
                peer_bytes: 0,
                fallback_chunks: 0,
            })
            .collect();
        let samples_per_byte = t
            .geom
            .shards
            .iter()
            .map(|s| s.records as f64 / s.bytes as f64)
            .collect();
        ClusterWorld {
            q: EventQueue::new(),
            nodes,
            mds: Mds::new(
                SimTime::from_secs_f64(t.env.mds_service_median),
                t.env.mds_sigma,
            ),
            interference: if t.env.interference {
                Interference::lustre_default()
            } else {
                Interference::none()
            },
            interference_fraction: 1.0,
            rng: SimRng::new(t.pipeline.seed ^ 0xc1u64),
            geom: t.geom.clone(),
            chunk_bytes: t.pipeline.chunk_bytes,
            samples_per_byte,
            env: t.env.clone(),
            cfg: t.cfg.clone(),
            model: t.model.clone(),
            bulk_share: t.env.bulk_stream_share.max(1.0),
            purpose: FxHashMap::default(),
            shard_map: peer_mode.then(|| monarch_core::ShardMap::new(n, t.cfg.shard_seed)),
            owners: Vec::new(),
            computing: false,
            consumed: 0.0,
            epoch_samples: 0.0,
            cur_batch: 0.0,
            epoch: 0,
            epochs_total: 0,
            epoch_start: SimTime::ZERO,
            nic_snapshot: vec![DeviceStats::default(); n],
            local_snapshot: vec![(0, 0); n],
            peer_snapshot: vec![(0, 0, 0); n],
            reports: Vec::new(),
        }
    }

    fn peer_mode(&self) -> bool {
        self.shard_map.is_some()
    }

    fn run(mut self, epochs: usize) -> ClusterReport {
        self.epochs_total = epochs;
        // Runaway guard: a healthy paper-scale cluster run needs tens of
        // millions of events; hitting the cap means a livelock.
        let event_cap: u64 = std::env::var("MONARCH_SIM_EVENT_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2_000_000_000);
        self.q.schedule(SimTime::ZERO, Ev::InterferenceShift);
        self.begin_epoch(SimTime::ZERO);
        while self.reports.len() < self.epochs_total {
            let Some((t, ev)) = self.q.pop() else {
                panic!("cluster queue drained in epoch {}", self.epoch)
            };
            self.handle(t, ev);
            self.resched(t);
            assert!(
                self.q.processed() < event_cap,
                "runaway cluster simulation: epoch {} t={:?} consumed={}/{} buffered={:?} \
                 readers_done={:?} pending={}",
                self.epoch,
                t,
                self.consumed,
                self.epoch_samples,
                self.nodes.iter().map(|n| n.buffered).collect::<Vec<_>>(),
                self.nodes
                    .iter()
                    .map(|n| n.readers.iter().filter(|r| r.done).count())
                    .collect::<Vec<_>>(),
                self.q.len(),
            );
        }
        ClusterReport {
            label: if self.peer_mode() {
                format!("monarch-peer-{:?}", self.cfg.sharding).to_lowercase()
            } else if self.cfg.monarch_ssd_capacity.is_some() {
                format!("monarch-{:?}", self.cfg.sharding).to_lowercase()
            } else {
                "vanilla-lustre".into()
            },
            nodes: self.cfg.nodes,
            bytes_per_epoch: if self.peer_mode() {
                self.geom.total_bytes() * self.cfg.nodes as u64
            } else {
                self.geom.total_bytes()
            },
            epochs: self.reports,
        }
    }

    // -- congestion model ---------------------------------------------------

    /// Rescale every client link: when the sum of active links exceeds the
    /// PFS backend bandwidth, each gets a proportional share (times the
    /// external-interference fraction).
    fn rebalance_backend(&mut self, now: SimTime) {
        let active = self
            .nodes
            .iter()
            .filter(|n| n.nic.active() > 0)
            .count()
            .max(1);
        let backend = self.cfg.pfs_backend_bandwidth * self.interference_fraction;
        let fair = backend / active as f64;
        let scale = (fair / self.env.lustre.bandwidth).min(1.0) * self.interference_fraction;
        let scale = scale.clamp(0.01, 1.0);
        for node in &mut self.nodes {
            node.nic.set_scale(now, scale);
        }
    }

    fn resched(&mut self, now: SimTime) {
        for i in 0..self.nodes.len() {
            let gen = self.nodes[i].nic.generation();
            if self.nodes[i].nic_gen != Some(gen) {
                if let Some(at) = self.nodes[i].nic.next_wake() {
                    self.q.schedule(at.max(now), Ev::NicWake { node: i, gen });
                }
                self.nodes[i].nic_gen = Some(gen);
            }
            let gen = self.nodes[i].ssd.generation();
            if self.nodes[i].ssd_gen != Some(gen) {
                if let Some(at) = self.nodes[i].ssd.next_wake() {
                    self.q.schedule(at.max(now), Ev::SsdWake { node: i, gen });
                }
                self.nodes[i].ssd_gen = Some(gen);
            }
            let gen = self.nodes[i].pnic.generation();
            if self.nodes[i].pnic_gen != Some(gen) {
                if let Some(at) = self.nodes[i].pnic.next_wake() {
                    self.q.schedule(at.max(now), Ev::PnicWake { node: i, gen });
                }
                self.nodes[i].pnic_gen = Some(gen);
            }
        }
    }

    // -- epoch lifecycle ------------------------------------------------------

    fn begin_epoch(&mut self, now: SimTime) {
        self.epoch_start = now;
        self.consumed = 0.0;
        self.epoch_samples = self.geom.total_records() as f64;
        for (i, node) in self.nodes.iter_mut().enumerate() {
            self.nic_snapshot[i] = node.nic.stats().clone();
            self.local_snapshot[i] = (node.local_chunks, node.remote_chunks);
            self.peer_snapshot[i] = (node.peer_chunks, node.peer_bytes, node.fallback_chunks);
            node.buffered = 0.0;
            for r in &mut node.readers {
                r.pending.clear();
                r.cur = None;
                r.inflight = false;
                r.done = false;
            }
        }

        if let Some(map) = &self.shard_map {
            // Re-derive the shard → owner assignment. Static keeps the
            // same salt forever; Reshuffled salts with the epoch, which
            // moves ~(n-1)/n of the shards to new owners.
            let salt = match self.cfg.sharding {
                Sharding::Static => 0,
                Sharding::Reshuffled => self.epoch as u64,
            };
            self.owners = (0..self.geom.num_shards())
                .map(|s| map.owner_salted(&format!("shard{s:05}"), salt))
                .collect();
            // A node only caches shards it owns: drop anything whose
            // ownership moved away (no-op under Static).
            for (k, node) in self.nodes.iter_mut().enumerate() {
                let cache = node.cache.as_mut().expect("peer mode implies cache");
                for (s, state) in cache.state.iter_mut().enumerate() {
                    if *state == ShardState::Local && self.owners[s] != k {
                        *state = ShardState::Remote;
                        cache.quota_used =
                            cache.quota_used.saturating_sub(self.geom.shards[s].bytes);
                    }
                }
            }
            // FanStore workload: every node streams the whole (locally
            // shuffled) dataset each epoch, so the global consumption is
            // n × the dataset.
            self.epoch_samples = self.geom.total_records() as f64 * self.nodes.len() as f64;
            for k in 0..self.nodes.len() {
                let mut order: Vec<usize> = (0..self.geom.num_shards()).collect();
                self.rng.shuffle(&mut order);
                let readers = self.nodes[k].readers.len();
                for (i, s) in order.into_iter().enumerate() {
                    self.nodes[k].readers[i % readers].pending.push_back(s);
                }
            }
            for k in 0..self.nodes.len() {
                for r in 0..self.nodes[k].readers.len() {
                    self.reader_advance(now, k, r);
                }
            }
            return;
        }

        // Partition the (possibly reshuffled) shard list across nodes,
        // then across each node's readers.
        let mut order: Vec<usize> = (0..self.geom.num_shards()).collect();
        match self.cfg.sharding {
            Sharding::Static => {
                // Same partition every epoch; shuffle only within nodes
                // using a per-epoch stream so the read *order* still
                // varies.
                let n = self.nodes.len();
                let mut parts: Vec<Vec<usize>> = vec![Vec::new(); n];
                for (i, s) in order.into_iter().enumerate() {
                    parts[i % n].push(s);
                }
                for (k, mut part) in parts.into_iter().enumerate() {
                    self.rng.shuffle(&mut part);
                    let readers = self.nodes[k].readers.len();
                    for (i, s) in part.into_iter().enumerate() {
                        self.nodes[k].readers[i % readers].pending.push_back(s);
                    }
                }
            }
            Sharding::Reshuffled => {
                self.rng.shuffle(&mut order);
                let n = self.nodes.len();
                for (i, s) in order.into_iter().enumerate() {
                    let k = i % n;
                    let readers = self.nodes[k].readers.len();
                    self.nodes[k].readers[(i / n) % readers]
                        .pending
                        .push_back(s);
                }
            }
        }
        for k in 0..self.nodes.len() {
            for r in 0..self.nodes[k].readers.len() {
                self.reader_advance(now, k, r);
            }
        }
    }

    fn maybe_finish_epoch(&mut self, now: SimTime) {
        if self.reports.len() >= self.epochs_total || self.computing {
            return;
        }
        // The tail batch may only become takeable the moment the last
        // reader flips to done — give the trainer a chance first.
        self.try_step(now);
        if self.computing {
            return;
        }
        let all_done = self
            .nodes
            .iter()
            .all(|n| n.readers.iter().all(|r| r.done) && n.buffered < 0.5);
        if !all_done {
            return;
        }
        let seconds = (now - self.epoch_start).as_secs_f64();
        let mut pfs_ops = 0;
        let mut pfs_bytes = 0;
        let mut local = 0u64;
        let mut remote = 0u64;
        let mut peer = 0u64;
        let mut peer_bytes = 0u64;
        let mut fallbacks = 0u64;
        for (i, node) in self.nodes.iter().enumerate() {
            let d = node.nic.stats().delta_since(&self.nic_snapshot[i]);
            pfs_ops += d.data_ops();
            pfs_bytes += d.bytes_read();
            local += node.local_chunks - self.local_snapshot[i].0;
            remote += node.remote_chunks - self.local_snapshot[i].1;
            peer += node.peer_chunks - self.peer_snapshot[i].0;
            peer_bytes += node.peer_bytes - self.peer_snapshot[i].1;
            fallbacks += node.fallback_chunks - self.peer_snapshot[i].2;
        }
        let hit = if local + remote + peer == 0 {
            0.0
        } else {
            local as f64 / (local + remote + peer) as f64
        };
        self.reports.push(ClusterEpoch {
            epoch: self.epoch,
            seconds,
            pfs_ops,
            pfs_bytes,
            local_hit_ratio: hit,
            peer_hits: peer,
            peer_bytes,
            peer_fallbacks: fallbacks,
        });
        self.epoch += 1;
        if self.epoch < self.epochs_total {
            self.begin_epoch(now);
        }
    }

    // -- event handling -------------------------------------------------------

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::NicWake { node, gen } => {
                if self.nodes[node].nic.generation() != gen {
                    return;
                }
                let finished = self.nodes[node].nic.collect_finished(now);
                self.nodes[node].nic_gen = None;
                let was_active = self.nodes[node].nic.active() + finished.len();
                for (id, _, bytes) in finished {
                    let p = self.purpose.remove(&(node, 0, id.0)).expect("purpose");
                    self.on_done(now, node, p, bytes);
                }
                // Link may have gone idle: rebalance the backend shares.
                if was_active > 0 && self.nodes[node].nic.active() == 0 {
                    self.rebalance_backend(now);
                }
            }
            Ev::SsdWake { node, gen } => {
                if self.nodes[node].ssd.generation() != gen {
                    return;
                }
                let finished = self.nodes[node].ssd.collect_finished(now);
                self.nodes[node].ssd_gen = None;
                for (id, _, bytes) in finished {
                    let p = self.purpose.remove(&(node, 1, id.0)).expect("purpose");
                    self.on_done(now, node, p, bytes);
                }
            }
            Ev::PnicWake { node, gen } => {
                if self.nodes[node].pnic.generation() != gen {
                    return;
                }
                let finished = self.nodes[node].pnic.collect_finished(now);
                self.nodes[node].pnic_gen = None;
                for (id, _, bytes) in finished {
                    let p = self.purpose.remove(&(node, 2, id.0)).expect("purpose");
                    self.on_done(now, node, p, bytes);
                }
            }
            Ev::MdsDone { node, reader } => {
                self.nodes[node].readers[reader].inflight = false;
                self.reader_advance(now, node, reader);
            }
            Ev::StepDone => {
                self.computing = false;
                self.consumed += self.cur_batch;
                self.cur_batch = 0.0;
                self.try_step(now);
                for k in 0..self.nodes.len() {
                    for r in 0..self.nodes[k].readers.len() {
                        self.reader_advance(now, k, r);
                    }
                }
                self.maybe_finish_epoch(now);
            }
            Ev::InterferenceShift => {
                self.interference_fraction = self.interference.current_fraction();
                self.rebalance_backend(now);
                let (at, _) = self.interference.step(now, &mut self.rng);
                self.q.schedule(at, Ev::InterferenceShift);
            }
        }
    }

    // -- readers ----------------------------------------------------------------

    fn buffer_full(&self, node: usize) -> bool {
        // Per-node prefetch budget: its share of the global batch times
        // the prefetch depth.
        let per_node =
            (self.pipeline_prefetch() * self.model.batch_size) as f64 / self.nodes.len() as f64;
        self.nodes[node].buffered >= per_node
    }

    fn pipeline_prefetch(&self) -> u64 {
        4
    }

    fn reader_advance(&mut self, now: SimTime, k: usize, r: usize) {
        if self.nodes[k].readers[r].inflight || self.nodes[k].readers[r].done || self.buffer_full(k)
        {
            return;
        }
        if let Some((s, off)) = self.nodes[k].readers[r].cur {
            if off < self.geom.shards[s].bytes {
                self.issue_chunk(now, k, r, s, off);
                return;
            }
        }
        match self.nodes[k].readers[r].pending.pop_front() {
            Some(next) => {
                self.nodes[k].readers[r].cur = Some((next, 0));
                if matches!(self.route(now, k, next), Route::Pfs | Route::PfsFallback) {
                    // Remote (NIC) shard: pay an MDS open. Peer reads
                    // skip it — the owner already holds the metadata.
                    let done = self.mds.submit(now, &mut self.rng);
                    self.nodes[k].readers[r].inflight = true;
                    self.q.schedule(done, Ev::MdsDone { node: k, reader: r });
                } else {
                    self.issue_chunk(now, k, r, next, 0);
                }
            }
            None => {
                self.nodes[k].readers[r].done = true;
                self.maybe_finish_epoch(now);
            }
        }
    }

    /// Where the next chunk of `shard` is served from; the first touch of
    /// a cacheable (in peer mode: *owned*) shard may enqueue a copy.
    fn route(&mut self, now: SimTime, k: usize, shard: usize) -> Route {
        if self.nodes[k].cache.is_none() {
            return Route::Pfs;
        };
        let owner = self.owners.get(shard).copied();
        let state = self.nodes[k].cache.as_ref().expect("cache").state[shard];
        match state {
            ShardState::Local => Route::Local,
            ShardState::Copying => Route::Pfs,
            ShardState::Remote => {
                if let Some(o) = owner {
                    if o != k {
                        // Peer-owned: served node-to-node when the owner
                        // has it staged, else straight from the PFS.
                        let held = self.nodes[o]
                            .cache
                            .as_ref()
                            .is_some_and(|c| c.state[shard] == ShardState::Local);
                        return if held {
                            Route::Peer(o)
                        } else {
                            Route::PfsFallback
                        };
                    }
                }
                let size = self.geom.shards[shard].bytes;
                let cache = self.nodes[k].cache.as_mut().expect("cache");
                if cache.quota_used + size <= cache.quota_cap {
                    cache.quota_used += size;
                    cache.state[shard] = ShardState::Copying;
                    cache.copy_queue.push_back(shard);
                    self.dispatch_copies(now, k);
                }
                Route::Pfs
            }
        }
    }

    fn issue_chunk(&mut self, now: SimTime, k: usize, r: usize, shard: usize, offset: u64) {
        let total = self.geom.shards[shard].bytes;
        let len = self.chunk_bytes.min(total - offset);
        let route = self.route(now, k, shard);
        if let Route::Peer(o) = route {
            // Two-hop peer transfer: the owner's NIC streams the chunk
            // out (contending with every other node it is serving), then
            // the requester's NIC receives it. Neither hop touches the
            // PFS link, so peer traffic is invisible to the backend cap.
            let latency =
                SimTime::from_secs_f64(self.rng.lognormal(PEER_LAT_MEDIAN, PEER_LAT_SIGMA));
            let id = self.nodes[o].pnic.start(now, len, latency, Kind::Read, 1.0);
            self.purpose.insert(
                (o, 2, id.0),
                Purpose::PeerSend {
                    requester: k,
                    reader: r,
                    shard,
                },
            );
            self.nodes[k].readers[r].cur = Some((shard, offset + len));
            self.nodes[k].readers[r].inflight = true;
            return;
        }
        let pfs = matches!(route, Route::Pfs | Route::PfsFallback);
        let (spec, was_idle) = if pfs {
            (self.env.lustre.clone(), self.nodes[k].nic.active() == 0)
        } else {
            (self.env.ssd.clone(), false)
        };
        let latency =
            SimTime::from_secs_f64(self.rng.lognormal(spec.latency_median, spec.latency_sigma));
        let node = &mut self.nodes[k];
        if route == Route::PfsFallback {
            node.fallback_chunks += 1;
        }
        let (dev, id) = if pfs {
            node.remote_chunks += 1;
            (
                0,
                node.nic.start_custom(
                    now,
                    len,
                    latency,
                    Kind::Read,
                    1.0,
                    1.0,
                    Some(spec.sync_stream_cap),
                ),
            )
        } else {
            node.local_chunks += 1;
            (
                1,
                node.ssd.start_custom(
                    now,
                    len,
                    latency,
                    Kind::Read,
                    1.0,
                    1.0,
                    Some(spec.sync_stream_cap),
                ),
            )
        };
        self.purpose
            .insert((k, dev, id.0), Purpose::Chunk { reader: r, shard });
        self.nodes[k].readers[r].cur = Some((shard, offset + len));
        self.nodes[k].readers[r].inflight = true;
        if was_idle {
            self.rebalance_backend(now);
        }
    }

    // -- MONARCH copies -----------------------------------------------------------

    fn dispatch_copies(&mut self, now: SimTime, k: usize) {
        loop {
            let Some(cache) = self.nodes[k].cache.as_mut() else {
                return;
            };
            if cache.idle_workers == 0 || cache.pending_writes >= 2 * cache.pool {
                return;
            }
            let Some(shard) = cache.copy_queue.pop_front() else {
                return;
            };
            cache.idle_workers -= 1;
            let size = self.geom.shards[shard].bytes;
            let spec = self.env.lustre.clone();
            let latency =
                SimTime::from_secs_f64(self.rng.lognormal(spec.latency_median, spec.latency_sigma));
            let was_idle = self.nodes[k].nic.active() == 0;
            let share = self.bulk_share;
            let id = self.nodes[k]
                .nic
                .start_weighted(now, size, latency, Kind::Read, 1.0, share);
            self.purpose
                .insert((k, 0, id.0), Purpose::CopyFetch { shard });
            if was_idle {
                self.rebalance_backend(now);
            }
        }
    }

    fn on_done(&mut self, now: SimTime, k: usize, purpose: Purpose, bytes: u64) {
        match purpose {
            Purpose::Chunk { reader, shard } => {
                let samples = bytes as f64 * self.samples_per_byte[shard];
                self.nodes[k].buffered += samples;
                self.nodes[k].readers[reader].inflight = false;
                self.try_step(now);
                self.reader_advance(now, k, reader);
                self.maybe_finish_epoch(now);
            }
            Purpose::CopyFetch { shard } => {
                let cache = self.nodes[k].cache.as_mut().expect("cache");
                cache.idle_workers += 1;
                cache.pending_writes += 1;
                let spec = self.env.ssd.clone();
                let latency = SimTime::from_secs_f64(
                    self.rng.lognormal(spec.latency_median, spec.latency_sigma),
                );
                let id =
                    self.nodes[k]
                        .ssd
                        .start(now, bytes, latency, Kind::Write, spec.write_weight);
                self.purpose
                    .insert((k, 1, id.0), Purpose::CopyWrite { shard });
                self.dispatch_copies(now, k);
            }
            Purpose::CopyWrite { shard } => {
                let cache = self.nodes[k].cache.as_mut().expect("cache");
                cache.pending_writes -= 1;
                cache.state[shard] = ShardState::Local;
                self.dispatch_copies(now, k);
            }
            Purpose::PeerSend {
                requester,
                reader,
                shard,
            } => {
                // Hop 2: the chunk lands on the requester's peer NIC.
                let latency =
                    SimTime::from_secs_f64(self.rng.lognormal(PEER_LAT_MEDIAN, PEER_LAT_SIGMA));
                let id = self.nodes[requester]
                    .pnic
                    .start(now, bytes, latency, Kind::Read, 1.0);
                self.purpose
                    .insert((requester, 2, id.0), Purpose::PeerRecv { reader, shard });
            }
            Purpose::PeerRecv { reader, shard } => {
                let samples = bytes as f64 * self.samples_per_byte[shard];
                let node = &mut self.nodes[k];
                node.buffered += samples;
                node.peer_chunks += 1;
                node.peer_bytes += bytes;
                node.readers[reader].inflight = false;
                self.try_step(now);
                self.reader_advance(now, k, reader);
                self.maybe_finish_epoch(now);
            }
        }
    }

    // -- synchronous trainer ---------------------------------------------------

    fn try_step(&mut self, now: SimTime) {
        if self.computing {
            return;
        }
        let remaining = self.epoch_samples - self.consumed;
        if remaining <= 0.25 {
            return;
        }
        let per_node = (self.model.batch_size as f64 / self.nodes.len() as f64)
            .min(remaining / self.nodes.len() as f64);
        // A node is ready when it has its share buffered, or when *its own*
        // readers are finished (it contributes what it has; stragglers that
        // exhausted an uneven partition must not block the cluster).
        let tail = self.nodes.iter().all(|n| n.readers.iter().all(|r| r.done));
        let ready = tail
            || self
                .nodes
                .iter()
                .all(|n| n.buffered + 0.25 >= per_node || n.readers.iter().all(|r| r.done));
        if !ready {
            return;
        }
        // Compute the batch before touching any buffer, so a declined step
        // never leaks samples. At the epoch tail (every reader finished)
        // the last ragged batch absorbs whatever is buffered, fractional
        // crumbs included — otherwise sub-sample residues deadlock the
        // epoch.
        let take: f64 = self
            .nodes
            .iter()
            .map(|n| {
                if tail {
                    n.buffered
                } else {
                    n.buffered.min(per_node)
                }
            })
            .sum();
        if take <= 1e-9 || (!tail && take <= 0.25) {
            return;
        }
        for node in &mut self.nodes {
            let t = if tail {
                node.buffered
            } else {
                node.buffered.min(per_node)
            };
            node.buffered -= t;
        }
        self.computing = true;
        self.cur_batch = take;
        // Data parallelism: the wall time of a step is the per-node batch
        // share's compute time (plus an allreduce term folded into the
        // per-sample cost).
        let step =
            SimTime::from_secs_f64((take / self.nodes.len() as f64) * self.model.per_sample_step);
        self.q.schedule(now + step, Ev::StepDone);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> DatasetGeom {
        DatasetGeom::miniature("cluster", 24_576, 5)
    }

    fn model() -> ModelProfile {
        ModelProfile {
            name: "tiny".into(),
            per_sample_step: 40e-6,
            gpu_fraction: 0.7,
            cpu_per_sample: 50e-6,
            batch_size: 256,
        }
    }

    fn run(cfg: ClusterConfig, epochs: usize) -> ClusterReport {
        ClusterTrainer::new(
            cfg,
            geom(),
            model(),
            PipelineConfig {
                readers: 4,
                ..PipelineConfig::default()
            }
            .with_seed(3),
            EnvConfig::default(),
        )
        .run(epochs)
    }

    #[test]
    fn single_node_matches_vanilla_structure() {
        let r = run(ClusterConfig::vanilla(1), 2);
        assert_eq!(r.nodes, 1);
        assert_eq!(r.epochs.len(), 2);
        let expect = geom().chunk_reads_per_epoch(256 << 10);
        for e in &r.epochs {
            assert_eq!(e.pfs_ops, expect);
            assert_eq!(e.local_hit_ratio, 0.0);
        }
    }

    #[test]
    fn more_nodes_speed_up_vanilla_until_backend_saturates() {
        let t1 = run(ClusterConfig::vanilla(1), 1).total_seconds();
        let t4 = run(ClusterConfig::vanilla(4), 1).total_seconds();
        assert!(t4 < t1 * 0.6, "4 nodes should be much faster: {t4} vs {t1}");
        // Backend cap: 16 nodes cannot be 16x faster than 1.
        let t16 = run(ClusterConfig::vanilla(16), 1).total_seconds();
        assert!(
            t16 > t1 / 16.0 * 2.0,
            "backend must throttle 16-node scaling: {t16} vs {t1}"
        );
    }

    #[test]
    fn monarch_static_sharding_converges_to_local() {
        // Per-node quota: each node's partition (total/4) fits.
        let cap = geom().total_bytes(); // generous
        let cfg = ClusterConfig {
            monarch_ssd_capacity: Some(cap),
            ..ClusterConfig::monarch(4, Sharding::Static)
        };
        let r = run(cfg, 3);
        // Small miniature shards flip quickly, so even epoch 1 serves a
        // majority locally; it just must not be fully warm yet.
        assert!(r.epochs[0].local_hit_ratio < 0.97);
        assert!(
            r.epochs[2].local_hit_ratio > 0.95,
            "static sharding should be ~fully local by epoch 3: {:?}",
            r.epochs
                .iter()
                .map(|e| e.local_hit_ratio)
                .collect::<Vec<_>>()
        );
        assert!(r.epochs[2].pfs_ops < r.epochs[0].pfs_ops / 5);
    }

    #[test]
    fn reshuffled_sharding_degrades_hit_ratio() {
        // Per-node quota = 1/4 of the dataset: static sharding can cache
        // its whole partition; reshuffled keeps missing.
        let quarter = geom().total_bytes() / 4;
        let stat = run(
            ClusterConfig {
                monarch_ssd_capacity: Some(quarter),
                ..ClusterConfig::monarch(4, Sharding::Static)
            },
            3,
        );
        let resh = run(
            ClusterConfig {
                monarch_ssd_capacity: Some(quarter),
                ..ClusterConfig::monarch(4, Sharding::Reshuffled)
            },
            3,
        );
        let s_hit = stat.epochs[2].local_hit_ratio;
        let r_hit = resh.epochs[2].local_hit_ratio;
        assert!(
            s_hit > r_hit + 0.25,
            "static {s_hit} should beat reshuffled {r_hit} clearly"
        );
        assert!(stat.epochs[2].pfs_ops < resh.epochs[2].pfs_ops);
    }

    #[test]
    fn peer_cache_scales_aggregate_throughput_with_flat_pfs() {
        // Partial-cache workload: each node's quota holds ~1/16 of the
        // dataset, so caches never cover the working set.
        let quota = geom().total_bytes() / 16;
        let one = run(
            ClusterConfig {
                monarch_ssd_capacity: Some(quota),
                ..ClusterConfig::monarch_peer(1, Sharding::Static)
            },
            3,
        );
        let four = run(
            ClusterConfig {
                monarch_ssd_capacity: Some(quota),
                ..ClusterConfig::monarch_peer(4, Sharding::Static)
            },
            3,
        );
        assert_eq!(one.label, "monarch-peer-static");
        assert_eq!(one.bytes_per_epoch, geom().total_bytes());
        assert_eq!(four.bytes_per_epoch, 4 * geom().total_bytes());
        // FanStore's scaling shape, on the warm epoch: aggregate
        // throughput grows with node count...
        let agg1 = one.agg_bytes_per_s(2);
        let agg4 = four.agg_bytes_per_s(2);
        assert!(
            agg4 >= 2.0 * agg1,
            "4 nodes should at least double aggregate throughput: {agg4:.3e} vs {agg1:.3e}"
        );
        // ...while per-node PFS traffic stays ~flat (peers absorb the
        // extra demand; only uncached shards still hit the PFS).
        let p1 = one.pfs_bytes_per_node(2);
        let p4 = four.pfs_bytes_per_node(2);
        assert!(
            p4 <= p1 * 1.1 && p4 >= p1 * 0.5,
            "per-node PFS bytes should stay ~flat: {p4:.3e} vs {p1:.3e}"
        );
        // A single node owns everything, so nothing travels peer-to-peer;
        // at 4 nodes the warm epoch serves peer hits and still falls back
        // to the PFS for the uncached tail.
        assert_eq!(one.epochs[2].peer_hits, 0);
        assert!(four.epochs[2].peer_hits > 0, "{:?}", four.epochs[2]);
        assert!(four.epochs[2].peer_bytes > 0);
        assert!(four.epochs[2].peer_fallbacks > 0);
    }

    #[test]
    fn peer_reshuffled_ownership_rewarms_from_the_pfs() {
        let quota = geom().total_bytes() / 16;
        let stat = run(
            ClusterConfig {
                monarch_ssd_capacity: Some(quota),
                ..ClusterConfig::monarch_peer(4, Sharding::Static)
            },
            3,
        );
        let resh = run(
            ClusterConfig {
                monarch_ssd_capacity: Some(quota),
                ..ClusterConfig::monarch_peer(4, Sharding::Reshuffled)
            },
            3,
        );
        assert_eq!(resh.label, "monarch-peer-reshuffled");
        // Rotating the owner assignment every epoch drops most of the
        // cache, so the warm epoch re-stages from the PFS.
        assert!(
            resh.epochs[2].pfs_bytes > stat.epochs[2].pfs_bytes,
            "reshuffled {} should out-read static {}",
            resh.epochs[2].pfs_bytes,
            stat.epochs[2].pfs_bytes
        );
    }

    #[test]
    fn peer_runs_are_deterministic() {
        let cfg = ClusterConfig {
            monarch_ssd_capacity: Some(geom().total_bytes() / 8),
            ..ClusterConfig::monarch_peer(2, Sharding::Static)
        };
        let a = run(cfg.clone(), 2);
        let b = run(cfg, 2);
        assert_eq!(a.total_seconds(), b.total_seconds());
        assert_eq!(a.pfs_ops(), b.pfs_ops());
        assert_eq!(a.epochs[1].peer_hits, b.epochs[1].peer_hits);
        assert_eq!(a.epochs[1].peer_bytes, b.epochs[1].peer_bytes);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(ClusterConfig::monarch(2, Sharding::Static), 2);
        let b = run(ClusterConfig::monarch(2, Sharding::Static), 2);
        assert_eq!(a.total_seconds(), b.total_seconds());
        assert_eq!(a.pfs_ops(), b.pfs_ops());
    }

    #[test]
    fn per_node_quota_respected() {
        let cap = geom().total_bytes() / 8;
        let cfg = ClusterConfig {
            monarch_ssd_capacity: Some(cap),
            ..ClusterConfig::monarch(2, Sharding::Static)
        };
        let r = run(cfg, 2);
        // Hit ratio bounded by what the quota can hold (~1/4 of each
        // node's partition at 2 nodes).
        assert!(r.epochs[1].local_hit_ratio < 0.5);
        assert!(r.epochs[1].local_hit_ratio > 0.05);
    }
}
