//! The event-driven training world (see module docs in `sim`).

use std::collections::VecDeque;
use std::sync::Arc;

use monarch_core::config::TelemetryConfig;
use monarch_core::driver::MemDriver;
use monarch_core::hash::{FxHashMap, FxHashSet};
use monarch_core::health::{ErrorClass, TierState};
use monarch_core::hierarchy::StorageHierarchy;
use monarch_core::metadata::{MetadataContainer, PlacementState};
use monarch_core::observe::{
    LedgerBuckets, LedgerSnapshot, ObserveReport, ReadClass, ReadTiming, ResidencyEventKind,
    TransitionCause,
};
use monarch_core::policy::{DecisionPoint, FeatureSource, PolicyEngine};
use monarch_core::pool::Lane;
use monarch_core::stats::Stats;
use monarch_core::telemetry::{EventKind, TelemetryRegistry, ThroughputSampler};
use monarch_core::trace::{names, FlowPhase, SpanRecord, QUEUE_TRACK};
use monarch_core::{LaneQueues, StorageDriver};
use simfs::clock::SimTime;
use simfs::fault::FaultPlan;
use simfs::interference::Interference;
use simfs::psdev::{Kind, PsDevice};
use simfs::rng::SimRng;
use simfs::{DeviceStats, EventQueue, Mds};

use crate::config::{DeviceSpec, EnvConfig, PipelineConfig, Setup, SimTierKind};
use crate::geometry::DatasetGeom;
use crate::models::ModelProfile;
use crate::report::{EpochReport, FaultWindowReport, RunReport};

/// Events of the training world.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A device may have finished transfers (generation pattern).
    DevWake { dev: usize, gen: u64 },
    /// An MDS open issued by a reader completed.
    MdsDone { reader: usize },
    /// The trainer finished a step.
    ComputeDone,
    /// Background-load regime shift on the PFS.
    InterferenceShift,
    /// Begin the next epoch (used by the caching flush barrier).
    StartEpoch,
    /// Begin pre-staging the dataset (placement option (i)).
    StartPrestage,
    /// Sample the PFS throughput (tracing only).
    TraceTick,
    /// A fault-plan window boundary: mark the throughput ledger and kick
    /// idle readers so a recovered tier gets probed promptly.
    FaultEdge { window: usize, start: bool },
}

/// Synthetic trace track for the pre-stage scheduler (no reader owns it).
const SIM_PRESTAGE_TRACK: u64 = 99;
/// First synthetic trace track for readers (`100 + reader index`).
const SIM_READER_TRACK0: u64 = 100;
/// First synthetic trace track for copy workers (`200 + worker index`).
const SIM_COPY_TRACK0: u64 = 200;

/// Why a transfer was issued.
#[derive(Debug, Clone, Copy)]
enum Purpose {
    /// A reader's chunk read; payload samples enter the prefetch buffer.
    /// `issued`/`traced` carry the trace-span start and the sampling
    /// decision from issue time to completion time.
    Chunk {
        reader: usize,
        shard: usize,
        issued: SimTime,
        traced: bool,
    },
    /// MONARCH placement: full-shard fetch from the PFS.
    CopyFetch { shard: usize },
    /// MONARCH placement: full-shard write to the destination tier.
    CopyWrite { shard: usize },
    /// Chunk-granular cache spill (vanilla-caching, or MONARCH with the
    /// full-file-fetch optimisation disabled).
    CacheWrite { shard: usize },
}

struct Dev {
    ps: PsDevice,
    spec: DeviceSpec,
    /// Generation for which a wake event has been scheduled.
    scheduled_gen: Option<u64>,
}

#[derive(Debug, Default)]
struct Reader {
    /// Shards this reader still has to stream this epoch.
    pending: VecDeque<usize>,
    /// Current shard and next byte offset.
    cur: Option<(usize, u64)>,
    /// An MDS open or a chunk transfer is outstanding.
    inflight: bool,
    /// Finished its share of the epoch.
    done: bool,
}

/// Which serving logic the run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModeTag {
    VanillaLustre,
    VanillaLocal,
    VanillaCaching,
    Monarch,
}

/// MONARCH state inside the simulation — built from the *real*
/// `monarch-core` components (metadata container, hierarchy quotas,
/// composed policy engine), with the copy pool modelled as K servers.
struct MonarchSim {
    meta: MetadataContainer,
    hierarchy: StorageHierarchy,
    policy: Arc<PolicyEngine>,
    /// Tier id → device index.
    tier_dev: Vec<usize>,
    /// Shard ids awaiting a copy worker, on the same two-lane discipline
    /// the real engine uses: the demand lane always drains first, a
    /// foreground read of a queued prefetch entry promotes it instead of
    /// duplicating the copy, and a plan boundary bulk-cancels the
    /// prefetch lane.
    lanes: LaneQueues<usize>,
    /// Clairvoyant lookahead (0 = reactive only).
    prefetch_lookahead: usize,
    /// This epoch's access plan: shard ids in foreground read order.
    plan: Vec<usize>,
    /// Shard id → plan index.
    plan_pos: FxHashMap<usize, usize>,
    /// One past the furthest plan entry a reader has started.
    plan_cursor: usize,
    /// Next plan index the prefetcher considers issuing.
    plan_issued: usize,
    /// Prefetch-issued shards → whether a foreground read reached them.
    prefetch_issued: FxHashMap<usize, bool>,
    /// Readers parked on a planned shard whose staged copy is in flight:
    /// the clairvoyant contract serves such reads from the copy when it
    /// lands rather than double-reading the shard from the PFS.
    waiting_readers: FxHashMap<usize, Vec<usize>>,
    /// Virtual instant each parked reader stopped, so the profiler can
    /// attribute the wait to the prefetch-lag bucket when it resumes.
    parked_at: FxHashMap<usize, SimTime>,
    /// Time-lost ledger baseline at the current epoch's start; the epoch
    /// report carries the delta against it.
    epoch_ledger: LedgerSnapshot,
    /// Shards whose staging fetch has landed in memory but whose tier
    /// write-back is still draining: a foreground read is served straight
    /// from the copy's buffer, costing no device time.
    buffer_ready: FxHashSet<usize>,
    idle_workers: usize,
    /// Configured pool size (fetch-slot count and write-stage bound).
    pool_threads: usize,
    /// In-flight placement writes (stage 2). The paper submits the fetch
    /// and the write as separate pool tasks (§III-B, operations ③/④), so
    /// a worker slot frees at fetch completion; this bound keeps the
    /// write stage from running arbitrarily far ahead of the SSD.
    pending_copy_writes: usize,
    /// Destination tier of an in-flight copy, per shard.
    copy_target: FxHashMap<usize, usize>,
    full_fetch: bool,
    /// Placement option (i): stage everything before the first epoch.
    prestage: bool,
    /// Chunk-cache mode (full_fetch = false): bytes written per shard.
    chunk_written: FxHashMap<usize, u64>,
    /// Placement skips (no tier had room).
    skips: u64,
    /// Telemetry registry fed with *virtual* timestamps; shares the event
    /// schema and histogram types with the real middleware.
    telemetry: Arc<TelemetryRegistry>,
    /// Virtual enqueue instant per queued shard (queue-wait histogram).
    copy_enqueued: FxHashMap<usize, SimTime>,
    /// Virtual dispatch instant per in-flight copy (duration histogram).
    copy_started: FxHashMap<usize, SimTime>,
    /// Flow id per scheduled-but-not-dispatched copy (tracing runs only).
    copy_flow: FxHashMap<usize, u64>,
    /// Shards whose scheduled copy still awaits a traced PFS-served chunk
    /// read to carry the flow start (`ph:"s"`).
    flow_start_pending: FxHashMap<usize, u64>,
    /// Trace identity of each dispatched copy (tracing runs only).
    copy_trace: FxHashMap<usize, CopyTrace>,
}

/// Virtual-time trace identity of one dispatched placement copy: the
/// flow linking it back to the read that scheduled it, the pre-allocated
/// `copy_exec` span id its children parent to, the synthetic worker
/// track, and the fetch→write stage boundary.
struct CopyTrace {
    flow: u64,
    exec_id: u64,
    tid: u64,
    write_started: SimTime,
}

/// Discrete-event trainer for one `(setup, dataset, model)` combination.
pub struct SimTrainer {
    setup: Setup,
    geom: DatasetGeom,
    model: ModelProfile,
    pipeline: PipelineConfig,
    env: EnvConfig,
}

impl SimTrainer {
    /// Assemble a trainer.
    #[must_use]
    pub fn new(
        setup: Setup,
        geom: DatasetGeom,
        model: ModelProfile,
        pipeline: PipelineConfig,
        env: EnvConfig,
    ) -> Self {
        Self {
            setup,
            geom,
            model,
            pipeline,
            env,
        }
    }

    /// Run `epochs` training epochs, returning the measurements.
    #[must_use]
    pub fn run(&self, epochs: usize) -> RunReport {
        World::build(self).run(epochs)
    }
}

/// `(virtual_seconds, total_consumed)` snapshot at a fault-window edge.
type WindowMark = Option<(f64, f64)>;

struct World {
    q: EventQueue<Ev>,
    devs: Vec<Dev>,
    mds: Mds,
    interference: Interference,
    rng: SimRng,
    /// Device index of the PFS (always last).
    lustre: usize,
    /// Device index of the local SSD (always 0).
    ssd: usize,

    geom: DatasetGeom,
    shard_names: Vec<String>,
    /// records / bytes per shard (samples carried per byte).
    samples_per_byte: Vec<f64>,
    chunk_bytes: u64,
    /// Hot-set skew: `hot_shards` shards get `hot_replays` extra reads
    /// per epoch (see `PipelineConfig`).
    hot_shards: usize,
    hot_replays: usize,

    mode: ModeTag,
    monarch: Option<MonarchSim>,
    /// Fair-share weight of bulk placement fetches on the PFS.
    bulk_share: f64,
    /// tf.data cache volume expansion (see `EnvConfig::cache_expansion`).
    cache_expansion: f64,
    /// Outstanding cache-spill writes (caching flush barrier).
    pending_cache_writes: u64,
    /// Back-pressure bound on in-flight spill writes: the writer pool of
    /// tf.data's cache is finite, so readers stall rather than letting
    /// writes pile up without bound.
    cache_write_limit: u64,

    readers: Vec<Reader>,
    purpose: FxHashMap<(usize, u64), Purpose>,

    buffered_samples: f64,
    inflight_samples: f64,
    buffer_cap: f64,

    computing: bool,
    cur_batch: f64,
    consumed: f64,
    epoch_samples: f64,
    gpu_busy: f64,

    model: ModelProfile,
    epoch: usize,
    epochs_total: usize,
    epoch_start: SimTime,
    /// Instant pre-staging began (option (i) runs only).
    prestage_started: SimTime,
    /// Pre-staging in progress (training has not started yet).
    prestaging: bool,
    dev_snapshot: Vec<DeviceStats>,
    reports: Vec<EpochReport>,
    metadata_init_seconds: f64,
    prestage_seconds: f64,
    /// Throughput tracing: sampling interval and the rate sampler fed with
    /// cumulative PFS read bytes at each tick.
    trace_interval: Option<SimTime>,
    sampler: ThroughputSampler,
    /// Deterministic fault schedule; `None` keeps the run bit-identical
    /// to a fault-free build.
    fault_plan: Option<FaultPlan>,
    /// Per-operation counter feeding the plan's deterministic error rolls
    /// (only advanced while a plan is attached).
    fault_ops: u64,
    /// Samples consumed across the whole run (fault-window ledger).
    total_consumed: f64,
    /// `(virtual_seconds, total_consumed)` at each window's start/end
    /// edge, indexed like `fault_plan.windows`.
    window_marks: Vec<(WindowMark, WindowMark)>,
    /// Virtual instant the last epoch ended (closes still-open windows).
    run_end: SimTime,
}

/// Virtual-clock timestamp in microseconds (journal resolution).
fn vmicros(t: SimTime) -> u64 {
    (t.as_secs_f64() * 1e6) as u64
}

/// Virtual duration in nanoseconds (histogram resolution).
fn vnanos(d: SimTime) -> u64 {
    (d.as_secs_f64() * 1e9) as u64
}

impl World {
    fn build(t: &SimTrainer) -> Self {
        let rng = SimRng::new(t.pipeline.seed ^ 0x4d4f_4e41);
        let mk_dev = |spec: &DeviceSpec| Dev {
            ps: PsDevice::new(spec.name.clone(), spec.bandwidth, spec.stream_cap),
            spec: spec.clone(),
            scheduled_gen: None,
        };

        // Device table. Index 0 = SSD, optional RAM in between for the
        // multi-tier ablation, last = Lustre.
        let (mode, monarch, devs): (ModeTag, Option<MonarchSim>, Vec<Dev>) = match &t.setup {
            Setup::VanillaLustre => (
                ModeTag::VanillaLustre,
                None,
                vec![mk_dev(&t.env.ssd), mk_dev(&t.env.lustre)],
            ),
            Setup::VanillaLocal => (
                ModeTag::VanillaLocal,
                None,
                vec![mk_dev(&t.env.ssd), mk_dev(&t.env.lustre)],
            ),
            Setup::VanillaCaching => (
                ModeTag::VanillaCaching,
                None,
                vec![mk_dev(&t.env.ssd), mk_dev(&t.env.lustre)],
            ),
            Setup::Monarch(cfg) => {
                // Devices: one per local tier (dedup by kind), plus Lustre.
                let mut devs = Vec::new();
                let mut tier_dev = Vec::new();
                for (kind, _) in &cfg.tiers {
                    let spec = match kind {
                        SimTierKind::Ssd => &t.env.ssd,
                        SimTierKind::Ram => &t.env.ram,
                    };
                    devs.push(mk_dev(spec));
                    tier_dev.push(devs.len() - 1);
                }
                devs.push(mk_dev(&t.env.lustre));
                tier_dev.push(devs.len() - 1); // source tier -> lustre dev

                // Real monarch-core decision components. The drivers are
                // capacity-only stand-ins: the policy reads quotas, never
                // bytes.
                let levels: Vec<(String, Arc<dyn StorageDriver>, Option<u64>)> = cfg
                    .tiers
                    .iter()
                    .enumerate()
                    .map(|(i, (kind, cap))| {
                        let name = match kind {
                            SimTierKind::Ssd => format!("ssd{i}"),
                            SimTierKind::Ram => format!("ram{i}"),
                        };
                        (
                            name.clone(),
                            Arc::new(MemDriver::new(name)) as Arc<dyn StorageDriver>,
                            Some(*cap),
                        )
                    })
                    .chain(std::iter::once((
                        "lustre".to_string(),
                        Arc::new(MemDriver::new("lustre")) as Arc<dyn StorageDriver>,
                        None,
                    )))
                    .collect();
                let tier_names: Vec<String> =
                    levels.iter().map(|(name, _, _)| name.clone()).collect();
                let stats = Arc::new(Stats::new(tier_names.len()));
                let telemetry = Arc::new(TelemetryRegistry::new(
                    tier_names,
                    stats,
                    &TelemetryConfig {
                        trace_sample_every_n: cfg.trace_sample_every_n,
                        ..TelemetryConfig::default()
                    },
                ));
                // The sim has no OS threads: give every actor a stable
                // synthetic track so the exported trace renders readers
                // and copy workers as separate named rows.
                let tr = telemetry.trace();
                if tr.is_enabled() {
                    tr.set_track_name(QUEUE_TRACK, "copy-queue");
                    tr.set_track_name(SIM_PRESTAGE_TRACK, "sim-prestage");
                    for r in 0..t.pipeline.readers.max(1) {
                        tr.set_track_name(SIM_READER_TRACK0 + r as u64, format!("sim-reader-{r}"));
                    }
                    for w in 0..cfg.pool_threads.max(1) {
                        tr.set_track_name(SIM_COPY_TRACK0 + w as u64, format!("sim-copy-{w}"));
                    }
                }
                let hierarchy = StorageHierarchy::new(levels).expect("valid sim hierarchy");
                let policy = Arc::new(PolicyEngine::from_kind(cfg.policy, cfg.admission));
                // Reuse-aware admission and the learned scorer read the
                // sim's access profiler through the same bridge the real
                // engine uses.
                policy.bind_features(Arc::clone(&telemetry) as Arc<dyn FeatureSource>);
                let ms = MonarchSim {
                    meta: MetadataContainer::default(),
                    hierarchy,
                    policy,
                    tier_dev,
                    lanes: LaneQueues::new(),
                    prefetch_lookahead: cfg.prefetch_lookahead,
                    plan: Vec::new(),
                    plan_pos: FxHashMap::default(),
                    plan_cursor: 0,
                    plan_issued: 0,
                    prefetch_issued: FxHashMap::default(),
                    waiting_readers: FxHashMap::default(),
                    parked_at: FxHashMap::default(),
                    epoch_ledger: LedgerSnapshot::default(),
                    buffer_ready: FxHashSet::default(),
                    idle_workers: cfg.pool_threads.max(1),
                    pool_threads: cfg.pool_threads.max(1),
                    pending_copy_writes: 0,
                    copy_target: FxHashMap::default(),
                    full_fetch: cfg.full_file_fetch,
                    prestage: cfg.prestage,
                    chunk_written: FxHashMap::default(),
                    skips: 0,
                    telemetry,
                    copy_enqueued: FxHashMap::default(),
                    copy_started: FxHashMap::default(),
                    copy_flow: FxHashMap::default(),
                    flow_start_pending: FxHashMap::default(),
                    copy_trace: FxHashMap::default(),
                };
                (ModeTag::Monarch, Some(ms), devs)
            }
        };

        let lustre = devs.len() - 1;
        let shard_names: Vec<String> = (0..t.geom.num_shards())
            .map(DatasetGeom::shard_name)
            .collect();
        let samples_per_byte: Vec<f64> = t
            .geom
            .shards
            .iter()
            .map(|s| s.records as f64 / s.bytes as f64)
            .collect();
        let interference = if t.env.interference {
            Interference::lustre_default()
        } else {
            Interference::none()
        };
        let buffer_cap = (t.pipeline.prefetch_batches * t.model.batch_size) as f64;
        let dev_count = devs.len();

        World {
            q: EventQueue::new(),
            devs,
            mds: Mds::new(
                SimTime::from_secs_f64(t.env.mds_service_median),
                t.env.mds_sigma,
            ),
            interference,
            lustre,
            ssd: 0,
            geom: t.geom.clone(),
            shard_names,
            samples_per_byte,
            chunk_bytes: t.pipeline.chunk_bytes,
            hot_shards: t.pipeline.hot_shards.min(t.geom.num_shards()),
            hot_replays: t.pipeline.hot_replays,
            mode,
            monarch,
            bulk_share: t.env.bulk_stream_share.max(1.0),
            cache_expansion: t.env.cache_expansion.max(1.0),
            pending_cache_writes: 0,
            cache_write_limit: 4 * t.pipeline.readers.max(1) as u64,
            readers: (0..t.pipeline.readers.max(1))
                .map(|_| Reader::default())
                .collect(),
            purpose: FxHashMap::default(),
            buffered_samples: 0.0,
            inflight_samples: 0.0,
            buffer_cap,
            computing: false,
            cur_batch: 0.0,
            consumed: 0.0,
            // Hot-set replays re-deliver their samples, so the epoch's
            // consumption target grows accordingly.
            epoch_samples: t.geom.total_records() as f64
                + t.geom
                    .shards
                    .iter()
                    .take(t.pipeline.hot_shards.min(t.geom.num_shards()))
                    .map(|s| (s.records * t.pipeline.hot_replays as u64) as f64)
                    .sum::<f64>(),
            gpu_busy: 0.0,
            model: t.model.clone(),
            epoch: 0,
            epochs_total: 0,
            epoch_start: SimTime::ZERO,
            prestage_started: SimTime::ZERO,
            prestaging: false,
            dev_snapshot: vec![DeviceStats::default(); dev_count],
            reports: Vec::new(),
            metadata_init_seconds: 0.0,
            prestage_seconds: 0.0,
            trace_interval: t.pipeline.trace_interval_secs.map(SimTime::from_secs_f64),
            sampler: ThroughputSampler::new(t.pipeline.trace_interval_secs.unwrap_or(1.0)),
            window_marks: vec![
                (None, None);
                t.env.fault_plan.as_ref().map_or(0, |p| p.windows.len())
            ],
            fault_plan: t.env.fault_plan.clone(),
            fault_ops: 0,
            total_consumed: 0.0,
            run_end: SimTime::ZERO,
            rng,
        }
    }

    // -- top-level loop ----------------------------------------------------

    fn run(mut self, epochs: usize) -> RunReport {
        self.epochs_total = epochs;

        // MONARCH initialises its namespace by scanning the dataset
        // directory: one MDS op per shard (paper: ≈13 s / ≈52 s).
        if let Some(ms) = self.monarch.as_ref() {
            let mut done = SimTime::ZERO;
            for (i, shard) in self.geom.shards.iter().enumerate() {
                done = self.mds.submit(done, &mut self.rng);
                ms.meta
                    .register(&self.shard_names[i], shard.bytes, ms.tier_dev.len() - 1);
            }
            self.metadata_init_seconds = done.as_secs_f64();
            if ms.prestage {
                // Placement option (i): stage before training; the first
                // epoch starts when staging drains (see CopyWrite handler).
                self.q.schedule(done, Ev::StartPrestage);
            } else {
                // Training starts after the scan (option ii).
                self.q.schedule(done, Ev::StartEpoch);
            }
        } else {
            self.q.schedule(SimTime::ZERO, Ev::StartEpoch);
        }

        // Interference chain on the PFS.
        self.q.schedule(SimTime::ZERO, Ev::InterferenceShift);
        if let Some(dt) = self.trace_interval {
            self.q.schedule(dt, Ev::TraceTick);
        }
        // Fault-window boundary markers.
        if let Some(plan) = self.fault_plan.as_ref() {
            for (i, w) in plan.windows.iter().enumerate() {
                self.q.schedule(
                    SimTime::from_secs_f64(w.start_s),
                    Ev::FaultEdge {
                        window: i,
                        start: true,
                    },
                );
                self.q.schedule(
                    SimTime::from_secs_f64(w.end_s),
                    Ev::FaultEdge {
                        window: i,
                        start: false,
                    },
                );
            }
        }

        // Runaway guard: hitting the cap means a livelock, not a big run.
        let event_cap: u64 = std::env::var("MONARCH_SIM_EVENT_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2_000_000_000);
        while self.reports.len() < self.epochs_total {
            let Some((t, ev)) = self.q.pop() else {
                panic!(
                    "event queue drained before epoch {} finished \
                     (buffered={}, consumed={}/{}, readers done: {})",
                    self.epoch,
                    self.buffered_samples,
                    self.consumed,
                    self.epoch_samples,
                    self.readers.iter().filter(|r| r.done).count(),
                );
            };
            self.handle(t, ev);
            self.resched_devices();
            assert!(
                self.q.processed() < event_cap,
                "runaway simulation: epoch {} t={:?} buffered={} inflight={} consumed={}/{} \
                 readers done {} computing={} pending_writes={} pending_events={}",
                self.epoch,
                t,
                self.buffered_samples,
                self.inflight_samples,
                self.consumed,
                self.epoch_samples,
                self.readers.iter().filter(|r| r.done).count(),
                self.computing,
                self.pending_cache_writes,
                self.q.len(),
            );
        }

        // Final gauge refresh so the attached snapshot carries end-of-run
        // values even when periodic tracing is disabled.
        self.sample_gauges();

        let device_names: Vec<String> = self.devs.iter().map(|d| d.spec.name.clone()).collect();
        let telemetry = self.monarch.as_ref().map(|ms| {
            let mut snap = ms.telemetry.snapshot();
            snap.health = Some(ms.hierarchy.health().snapshot());
            snap
        });
        // Per-window throughput ledger from the edge marks; a window the
        // run ended inside closes at the run's final instant.
        let fault_windows: Vec<FaultWindowReport> = match self.fault_plan.as_ref() {
            Some(plan) => plan
                .windows
                .iter()
                .enumerate()
                .filter_map(|(i, w)| {
                    let (t0, c0) = self.window_marks[i].0?;
                    let (t1, c1) = self.window_marks[i]
                        .1
                        .unwrap_or((self.run_end.as_secs_f64(), self.total_consumed));
                    let dt = t1 - t0;
                    (dt > 0.0).then(|| FaultWindowReport {
                        device: w.device.clone(),
                        kind: format!("{:?}", w.kind),
                        start_s: w.start_s,
                        end_s: w.end_s,
                        samples_per_s: (c1 - c0) / dt,
                    })
                })
                .collect(),
            None => Vec::new(),
        };
        // Whole-run attribution: total training wall (virtual), folded by
        // the reader count — identical roll-up to `monarch report`.
        let total_seconds: f64 = self.reports.iter().map(|e| e.seconds).sum();
        let observe = telemetry.as_ref().and_then(|snap| {
            ObserveReport::from_snapshot(snap, total_seconds, self.readers.len(), 5)
        });
        RunReport {
            setup: match self.mode {
                ModeTag::VanillaLustre => "vanilla-lustre",
                ModeTag::VanillaLocal => "vanilla-local",
                ModeTag::VanillaCaching => "vanilla-caching",
                ModeTag::Monarch => "monarch",
            }
            .to_string(),
            model: self.model.name.clone(),
            dataset: self.geom.name.clone(),
            device_names,
            pfs_device: self.lustre,
            metadata_init_seconds: self.metadata_init_seconds,
            prestage_seconds: self.prestage_seconds,
            telemetry,
            trace_json: self.monarch.as_ref().and_then(|ms| {
                let tr = ms.telemetry.trace();
                tr.is_enabled().then(|| tr.export_chrome_json())
            }),
            observe,
            fault_windows,
            pfs_throughput_series: self.sampler.into_series(),
            epochs: self.reports,
        }
    }

    /// Refresh the MONARCH gauge families from live sim state — the same
    /// family names the real engine's `GaugeSampler` publishes, so a
    /// sim-backed snapshot exposes an identical schema. Sampled on every
    /// trace tick, so gauge values move over the course of an epoch.
    fn sample_gauges(&self) {
        let Some(ms) = self.monarch.as_ref() else {
            return;
        };
        let g = ms.telemetry.gauges();
        let levels = ms.hierarchy.levels();
        let files = ms.meta.residency_histogram(levels);
        for tier in ms.hierarchy.tiers() {
            let labels = &[("tier", tier.name.as_str())];
            if let Some(quota) = tier.quota.as_ref() {
                g.gauge(
                    "monarch_tier_occupancy_bytes",
                    "Bytes resident on the tier (quota accounting).",
                    labels,
                )
                .set(quota.used() as i64);
                g.gauge(
                    "monarch_tier_capacity_bytes",
                    "Configured capacity of the tier in bytes.",
                    labels,
                )
                .set(quota.capacity() as i64);
            }
            g.gauge(
                "monarch_tier_files",
                "Files currently resident on the tier.",
                labels,
            )
            .set(files.get(tier.id).copied().unwrap_or(0) as i64);
            g.gauge(
                "monarch_tier_health_state",
                "Tier breaker state (0 closed, 1 suspect, 2 quarantined).",
                labels,
            )
            .set(match ms.hierarchy.health().tier(tier.id).state() {
                TierState::Closed => 0,
                TierState::Suspect => 1,
                TierState::Quarantined => 2,
            });
        }
        g.gauge(
            "monarch_degraded",
            "1 while at least one tier is quarantined.",
            &[],
        )
        .set(i64::from(ms.hierarchy.health().degraded()));
        g.gauge(
            "monarch_lane_queued",
            "Copies queued (not yet started) per pool lane.",
            &[("lane", "demand")],
        )
        .set(ms.lanes.queued(Lane::Demand) as i64);
        g.gauge(
            "monarch_lane_queued",
            "Copies queued (not yet started) per pool lane.",
            &[("lane", "prefetch")],
        )
        .set(ms.lanes.queued(Lane::Prefetch) as i64);
        g.gauge(
            "monarch_pool_inflight_jobs",
            "Copies currently executing on pool workers.",
            &[],
        )
        .set(ms.pool_threads.saturating_sub(ms.idle_workers) as i64);
        if ms.prefetch_lookahead > 0 {
            g.gauge(
                "monarch_prefetch_window_lag_entries",
                "Plan entries issued ahead of the read cursor.",
                &[],
            )
            .set(ms.plan_issued.saturating_sub(ms.plan_cursor) as i64);
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::DevWake { dev, gen } => {
                if self.devs[dev].ps.generation() != gen {
                    return; // stale wake
                }
                let finished = self.devs[dev].ps.collect_finished(now);
                // Force a reschedule even if nothing finished (arm-time
                // wakes leave the generation untouched).
                self.devs[dev].scheduled_gen = None;
                for (id, _kind, bytes) in finished {
                    let purpose = self
                        .purpose
                        .remove(&(dev, id.0))
                        .expect("every transfer has a purpose");
                    self.on_transfer_done(now, dev, purpose, bytes);
                }
            }
            Ev::MdsDone { reader } => {
                // The reader's current shard is open; issue its first chunk.
                self.readers[reader].inflight = false;
                self.reader_advance(now, reader);
            }
            Ev::ComputeDone => self.on_compute_done(now),
            Ev::InterferenceShift => {
                // Apply the chain's *current* regime now; the next regime
                // takes effect when the next shift event fires.
                let frac = self.interference.current_fraction();
                let lustre = self.lustre;
                if self.devs[lustre].spec.interference {
                    self.devs[lustre].ps.set_scale(now, frac);
                }
                let (at, _next) = self.interference.step(now, &mut self.rng);
                self.q.schedule(at, Ev::InterferenceShift);
            }
            Ev::StartEpoch => self.begin_epoch(now),
            Ev::FaultEdge { window, start } => {
                let mark = (now.as_secs_f64(), self.total_consumed);
                if start {
                    self.window_marks[window].0 = Some(mark);
                } else {
                    self.window_marks[window].1 = Some(mark);
                }
                self.sample_gauges();
                // A window edge can change what route_chunk decides: kick
                // any idle readers so a recovered tier is probed promptly.
                for r in 0..self.readers.len() {
                    self.reader_advance(now, r);
                }
            }
            Ev::TraceTick => {
                let bytes = self.devs[self.lustre].ps.stats().bytes_read();
                self.sampler.force_sample(now.as_secs_f64(), bytes);
                self.sample_gauges();
                if let Some(interval) = self.trace_interval {
                    self.q.schedule(now + interval, Ev::TraceTick);
                }
            }
            Ev::StartPrestage => {
                self.prestage_started = now;
                self.prestaging = true;
                let ms = self.monarch.as_mut().expect("prestage implies monarch");
                let source = ms.tier_dev.len() - 1;
                let tr = Arc::clone(ms.telemetry.trace());
                for i in 0..self.geom.num_shards() {
                    if ms
                        .meta
                        .begin_copy(&self.shard_names[i], source)
                        .unwrap_or(false)
                    {
                        ms.lanes.push(Lane::Demand, i);
                        ms.copy_enqueued.insert(i, now);
                        ms.telemetry.stats().copy_scheduled();
                        ms.telemetry.event_at(
                            vmicros(now),
                            EventKind::CopyScheduled {
                                file: self.shard_names[i].clone(),
                                bytes: self.geom.shards[i].bytes,
                            },
                        );
                        if tr.is_enabled() {
                            // No foreground read exists, so the schedule
                            // span itself carries the flow start (like the
                            // real middleware's prestage path).
                            let flow = tr.next_id();
                            ms.copy_flow.insert(i, flow);
                            tr.record(
                                SpanRecord::new(
                                    names::COPY_SCHEDULED,
                                    "copy",
                                    SIM_PRESTAGE_TRACK,
                                    vmicros(now),
                                    0,
                                )
                                .with_id(tr.next_id())
                                .with_flow(flow, FlowPhase::Start)
                                .arg_str("file", self.shard_names[i].clone())
                                .arg_u64("bytes", self.geom.shards[i].bytes),
                            );
                        }
                    }
                }
                if self.monarch.as_ref().unwrap().lanes.is_empty() {
                    self.q.schedule(now, Ev::StartEpoch);
                } else {
                    self.dispatch_copy_workers(now);
                }
            }
        }
    }

    /// Keep every device's pending wake event in sync with its state.
    fn resched_devices(&mut self) {
        for i in 0..self.devs.len() {
            let gen = self.devs[i].ps.generation();
            if self.devs[i].scheduled_gen == Some(gen) {
                continue;
            }
            if let Some(at) = self.devs[i].ps.next_wake() {
                self.q
                    .schedule(at.max(self.q.now()), Ev::DevWake { dev: i, gen });
            }
            self.devs[i].scheduled_gen = Some(gen);
        }
    }

    // -- epoch lifecycle ---------------------------------------------------

    fn begin_epoch(&mut self, now: SimTime) {
        debug_assert!(
            self.inflight_samples.abs() < 0.5 && self.readers.iter().all(|r| !r.inflight),
            "epoch {} started with chunks in flight: inflight={} readers={:?}",
            self.epoch,
            self.inflight_samples,
            self.readers.iter().map(|r| r.inflight).collect::<Vec<_>>(),
        );
        self.epoch_start = now;
        self.consumed = 0.0;
        self.gpu_busy = 0.0;
        self.buffered_samples = 0.0;
        self.inflight_samples = 0.0;
        for (i, d) in self.devs.iter().enumerate() {
            self.dev_snapshot[i] = d.ps.stats().clone();
        }

        // tf.data: shuffle the shard list, then deal shards to the readers
        // round-robin (parallel interleave with cycle length = readers).
        // Hot-set replays join the list before the shuffle, so the extra
        // reads interleave with the one-pass scan like a second job's
        // sampler would.
        let mut order: Vec<usize> = (0..self.geom.num_shards()).collect();
        for s in 0..self.hot_shards {
            for _ in 0..self.hot_replays {
                order.push(s);
            }
        }
        self.rng.shuffle(&mut order);
        for r in &mut self.readers {
            r.pending.clear();
            r.cur = None;
            r.inflight = false;
            r.done = false;
        }
        let n = self.readers.len();
        for (i, &shard) in order.iter().enumerate() {
            self.readers[i % n].pending.push_back(shard);
        }
        // Clairvoyant mode: the shuffled order *is* the epoch's access
        // plan — hand it to the prefetcher before the readers start.
        if let Some(ms) = self.monarch.as_mut() {
            ms.epoch_ledger = ms.telemetry.observe().profiler().ledger();
            if ms.prefetch_lookahead > 0 {
                // Hand the epoch's read order to the policy engine: the
                // clairvoyant eviction ranks by next use, and the plan
                // boundary clears last epoch's staged-but-unread pins.
                let names: Vec<String> =
                    order.iter().map(|&s| self.shard_names[s].clone()).collect();
                ms.policy.set_plan(&names);
                ms.plan_pos = order.iter().enumerate().map(|(i, &s)| (s, i)).collect();
                ms.plan = order;
                ms.plan_cursor = 0;
                ms.plan_issued = 0;
                let source = ms.tier_dev.len() - 1;
                for shard in ms.lanes.drain_prefetch() {
                    // A plan boundary withdraws still-queued prefetches;
                    // the timeline records the cancellation like the real
                    // engine's `plan()` does.
                    ms.telemetry.observe().timeline().record_at(
                        vmicros(now),
                        &self.shard_names[shard],
                        source,
                        ResidencyEventKind::Canceled,
                        TransitionCause::Plan,
                    );
                }
                ms.prefetch_issued.clear();
                ms.waiting_readers.clear();
                ms.parked_at.clear();
                ms.buffer_ready.clear();
                self.pump_prefetch(now);
            }
        }
        for r in 0..n {
            self.reader_advance(now, r);
        }
    }

    fn end_epoch(&mut self, now: SimTime) {
        self.run_end = now;
        let seconds = (now - self.epoch_start).as_secs_f64();
        let devices: Vec<DeviceStats> = self
            .devs
            .iter()
            .enumerate()
            .map(|(i, d)| d.ps.stats().delta_since(&self.dev_snapshot[i]))
            .collect();
        let cpu_work = self.consumed * self.model.cpu_per_sample;
        // Attribute this epoch's wall from the ledger delta since the
        // epoch began; the reader count is the fold-down concurrency.
        let observe = self.monarch.as_ref().and_then(|ms| {
            let p = ms.telemetry.observe().profiler();
            p.is_enabled().then(|| {
                let delta = p.ledger().delta(&ms.epoch_ledger);
                LedgerBuckets::from_ledger(&delta, seconds, self.readers.len())
            })
        });
        self.reports.push(EpochReport {
            epoch: self.epoch,
            seconds,
            devices,
            gpu_util: if seconds > 0.0 {
                self.gpu_busy / seconds
            } else {
                0.0
            },
            cpu_util: if seconds > 0.0 {
                cpu_work / seconds
            } else {
                0.0
            },
            observe,
        });
        self.epoch += 1;
        if self.epoch >= self.epochs_total {
            return;
        }
        // Start the next epoch synchronously: a queued StartEpoch would
        // leave a window in which another completion event could observe
        // the "everything done" state and end the epoch twice.
        self.begin_epoch(now);
    }

    fn maybe_finish_epoch(&mut self, now: SimTime) {
        if self.reports.len() >= self.epochs_total {
            return;
        }
        if self.computing || self.buffered_samples > 0.25 {
            return;
        }
        // Vanilla-caching: the epoch is not over until the cache file is
        // flushed — tf.data finalises the cache at iterator exhaustion, so
        // the flush tail is part of the measured epoch time.
        if self.mode == ModeTag::VanillaCaching && self.pending_cache_writes > 0 {
            return;
        }
        if self.readers.iter().all(|r| r.done) {
            debug_assert!(
                (self.consumed - self.epoch_samples).abs() < 1.0,
                "epoch ended with {} of {} samples consumed",
                self.consumed,
                self.epoch_samples
            );
            self.end_epoch(now);
        }
    }

    // -- readers -----------------------------------------------------------

    /// Device that serves a chunk of `shard` right now for reader `r`;
    /// MONARCH may also kick off a background placement as a side effect
    /// (first touch).
    fn route_chunk(&mut self, now: SimTime, r: usize, shard: usize) -> usize {
        match self.mode {
            ModeTag::VanillaLustre => self.lustre,
            ModeTag::VanillaLocal => self.ssd,
            ModeTag::VanillaCaching => {
                if self.epoch == 0 {
                    self.lustre
                } else {
                    self.ssd
                }
            }
            ModeTag::Monarch => {
                let name = &self.shard_names[shard];
                let ms = self.monarch.as_mut().expect("monarch state");
                let info = ms.meta.lookup_for_read(name).expect("shard registered");
                ms.policy.on_access(name, info.tier);
                // Fault-aware serving, mirroring the real read path: a
                // failing fast-tier read records against the tier's
                // breaker and falls back to the PFS; a quarantined tier
                // is skipped outright except for the timed half-open
                // probe, whose success re-admits it.
                let source_tier = ms.tier_dev.len() - 1;
                let mut serve_tier = info.tier;
                if info.tier != source_tier {
                    let t_us = vmicros(now);
                    let faulted = match self.fault_plan.as_ref() {
                        Some(plan) => {
                            let dev_name = &self.devs[ms.tier_dev[info.tier]].spec.name;
                            let fails =
                                plan.read_fails(dev_name, now.as_secs_f64(), self.fault_ops);
                            self.fault_ops += 1;
                            fails
                        }
                        None => false,
                    };
                    let health = ms.hierarchy.health();
                    let tier_health = health.tier(info.tier);
                    if tier_health.is_quarantined() {
                        if tier_health.probe_permit(t_us) {
                            let cfg = health.config();
                            tier_health.probe_result(!faulted, &cfg, t_us);
                            ms.telemetry.event_at(
                                t_us,
                                EventKind::TierProbed {
                                    tier: info.tier,
                                    ok: !faulted,
                                },
                            );
                            if faulted {
                                serve_tier = source_tier;
                            } else {
                                ms.telemetry.stats().tier_recovery();
                                ms.telemetry
                                    .event_at(t_us, EventKind::TierRecovered { tier: info.tier });
                            }
                        } else {
                            serve_tier = source_tier;
                        }
                    } else if faulted {
                        let cfg = health.config();
                        ms.telemetry.stats().read_retry();
                        let (state, transitioned) =
                            tier_health.record_error(ErrorClass::Transient, &cfg, t_us);
                        if transitioned && state == TierState::Quarantined {
                            ms.telemetry.stats().tier_quarantine();
                            ms.telemetry.event_at(
                                t_us,
                                EventKind::TierQuarantined {
                                    tier: info.tier,
                                    reason: "injected device fault".into(),
                                },
                            );
                        }
                        serve_tier = source_tier;
                    } else {
                        tier_health.record_success(&health.config(), t_us);
                    }
                    if serve_tier != info.tier {
                        ms.telemetry.stats().degraded_read();
                    }
                }
                let dev = ms.tier_dev[serve_tier];
                // Demand preemption: a foreground read of a shard still
                // sitting in the prefetch lane moves it to the demand lane
                // — one copy, higher priority, no duplicate.
                let mut promoted = false;
                if ms.prefetch_lookahead > 0 && ms.lanes.promote_where(|&s| s == shard) {
                    ms.telemetry.stats().prefetch_promote();
                    ms.telemetry.event_at(
                        vmicros(now),
                        EventKind::PrefetchPromoted { file: name.clone() },
                    );
                    ms.telemetry.observe().timeline().record_at(
                        vmicros(now),
                        name,
                        info.tier,
                        ResidencyEventKind::Promoted,
                        TransitionCause::Demand,
                    );
                    promoted = true;
                }
                if info.state == PlacementState::Unplaced {
                    let bytes = self.geom.shards[shard].bytes;
                    if ms.full_fetch {
                        if Self::begin_admitted_copy(
                            ms,
                            now,
                            name,
                            bytes,
                            DecisionPoint::DemandAdmit,
                        ) {
                            ms.lanes.push(Lane::Demand, shard);
                            ms.copy_enqueued.insert(shard, now);
                            ms.telemetry.stats().copy_scheduled();
                            ms.telemetry.event_at(
                                vmicros(now),
                                EventKind::CopyScheduled {
                                    file: name.clone(),
                                    bytes: self.geom.shards[shard].bytes,
                                },
                            );
                            let tr = Arc::clone(ms.telemetry.trace());
                            if tr.is_enabled() {
                                // The flow start rides on the first traced
                                // PFS-served `driver_pread` of this shard,
                                // mirroring the real read path.
                                let flow = tr.next_id();
                                ms.copy_flow.insert(shard, flow);
                                ms.flow_start_pending.insert(shard, flow);
                                tr.record(
                                    SpanRecord::new(
                                        names::COPY_SCHEDULED,
                                        "copy",
                                        SIM_READER_TRACK0 + r as u64,
                                        vmicros(now),
                                        0,
                                    )
                                    .with_id(tr.next_id())
                                    .arg_u64("flow", flow)
                                    .arg_str("file", name.clone())
                                    .arg_u64("bytes", self.geom.shards[shard].bytes),
                                );
                            }
                            self.dispatch_copy_workers(now);
                        }
                    } else {
                        // Ablation: chunk-granular caching. Reserve quota
                        // once per shard; spill each chunk as it is read.
                        if Self::begin_admitted_copy(
                            ms,
                            now,
                            name,
                            bytes,
                            DecisionPoint::DemandAdmit,
                        ) {
                            let size = bytes;
                            ms.telemetry.stats().copy_scheduled();
                            ms.telemetry.event_at(
                                vmicros(now),
                                EventKind::CopyScheduled {
                                    file: name.clone(),
                                    bytes: size,
                                },
                            );
                            // The chunk-spill path cannot execute victim
                            // evictions mid-read, so only an already-
                            // reserved (evict-free) decision proceeds.
                            match ms.policy.place(&ms.hierarchy, name, size) {
                                Ok(Some(d)) if d.evict.is_empty() => {
                                    let (used, capacity) = ms
                                        .hierarchy
                                        .tier(d.tier)
                                        .ok()
                                        .and_then(|t| t.quota.as_ref())
                                        .map(|q| (q.used(), q.capacity()))
                                        .unwrap_or((0, 0));
                                    ms.telemetry.event_at(
                                        vmicros(now),
                                        EventKind::PlacementDecided {
                                            file: name.clone(),
                                            tier: d.tier,
                                            used,
                                            capacity,
                                        },
                                    );
                                    ms.copy_target.insert(shard, d.tier);
                                    ms.chunk_written.insert(shard, 0);
                                }
                                _ => {
                                    ms.skips += 1;
                                    ms.telemetry.stats().placement_skip();
                                    ms.telemetry.event_at(
                                        vmicros(now),
                                        EventKind::PlacementSkipped {
                                            file: name.clone(),
                                            reason: "no local tier had room".into(),
                                        },
                                    );
                                    let _ = ms.meta.abort_copy(name, true);
                                }
                            }
                        }
                    }
                }
                if promoted {
                    // The promoted copy may be a parked reader's wake-up
                    // call: make sure an idle worker picks it up now.
                    self.dispatch_copy_workers(now);
                }
                dev
            }
        }
    }

    fn buffer_full(&self) -> bool {
        self.buffered_samples + self.inflight_samples >= self.buffer_cap
    }

    /// Spill-write back-pressure: stall readers while too many cache
    /// writes are in flight (applies to the setups that spill per chunk).
    fn spill_backpressure(&self) -> bool {
        let spilling = match self.mode {
            ModeTag::VanillaCaching => self.epoch == 0,
            ModeTag::Monarch => self.monarch.as_ref().is_some_and(|ms| !ms.full_fetch),
            _ => false,
        };
        spilling && self.pending_cache_writes >= self.cache_write_limit
    }

    /// Let reader `r` issue its next operation if it can.
    fn reader_advance(&mut self, now: SimTime, r: usize) {
        if self.readers[r].inflight
            || self.readers[r].done
            || self.buffer_full()
            || self.spill_backpressure()
        {
            return;
        }
        // Continue the current shard if it still has bytes.
        if let Some((s, off)) = self.readers[r].cur {
            if off < self.geom.shards[s].bytes {
                self.issue_chunk(now, r, s, off);
                return;
            }
        }
        // Otherwise move on to the next assigned shard.
        match self.readers[r].pending.pop_front() {
            Some(next) => {
                self.readers[r].cur = Some((next, 0));
                // A freshly started shard served by Lustre pays an MDS
                // open before its first chunk.
                let dev = self.route_chunk(now, r, next);
                self.prefetch_note_read(now, next);
                // Clairvoyant interception, in precedence order: a shard
                // whose staged fetch already landed in memory is consumed
                // from the copy buffer outright; one whose copy is still
                // in flight parks the reader until the fetch completes —
                // either way the read never races a duplicate synchronous
                // fetch against its own staging copy over the PFS.
                if self.clairvoyant_buffer_serve(now, r, next) {
                    self.reader_advance(now, r);
                    return;
                }
                if self.prefetch_park(now, r, next) {
                    return;
                }
                if dev == self.lustre {
                    // MDS-stall windows stretch the open's service time
                    // (same jitter draw, so healthy runs are identical).
                    let scale = self.fault_plan.as_ref().map_or(1.0, |p| {
                        p.mds_scale(&self.devs[self.lustre].spec.name, now.as_secs_f64())
                    });
                    let done = self.mds.submit_scaled(now, &mut self.rng, scale);
                    self.readers[r].inflight = true;
                    self.q.schedule(done, Ev::MdsDone { reader: r });
                } else {
                    self.issue_chunk(now, r, next, 0);
                }
            }
            None => {
                self.readers[r].done = true;
                self.maybe_finish_epoch(now);
            }
        }
    }

    fn issue_chunk(&mut self, now: SimTime, r: usize, shard: usize, offset: u64) {
        let total = self.geom.shards[shard].bytes;
        let len = self.chunk_bytes.min(total - offset);
        let dev = self.route_chunk(now, r, shard);
        let mut traced = false;
        if let Some(ms) = self.monarch.as_ref() {
            if let Some(tier) = ms.tier_dev.iter().position(|&d| d == dev) {
                ms.telemetry.stats().record_read(tier, len);
            }
            traced = ms.telemetry.trace().sample_read();
        }
        let latency = self.sample_latency(dev);
        let sync_cap = self.devs[dev].spec.sync_stream_cap;
        // Epoch ≥ 2 of vanilla-caching reads the expanded cache files.
        let weight = if self.mode == ModeTag::VanillaCaching && self.epoch > 0 {
            self.cache_expansion
        } else {
            1.0
        };
        let id = self.devs[dev].ps.start_custom(
            now,
            len,
            latency,
            Kind::Read,
            weight,
            1.0,
            Some(sync_cap),
        );
        self.purpose.insert(
            (dev, id.0),
            Purpose::Chunk {
                reader: r,
                shard,
                issued: now,
                traced,
            },
        );
        self.readers[r].cur = Some((shard, offset + len));
        self.readers[r].inflight = true;
        self.inflight_samples += len as f64 * self.samples_per_byte[shard];
    }

    fn sample_latency(&mut self, dev: usize) -> SimTime {
        let spec = &self.devs[dev].spec;
        let s = self.rng.lognormal(spec.latency_median, spec.latency_sigma);
        SimTime::from_secs_f64(s)
    }

    /// Record the virtual-time span tree of one sampled chunk read:
    /// `read` with `metadata_lookup` / `tier_resolve` / `driver_pread`
    /// children, the same shape the real middleware records. A PFS-served
    /// read whose shard has a copy awaiting its flow start carries the
    /// `ph:"s"` endpoint on its `driver_pread`.
    fn record_read_spans(
        &mut self,
        now: SimTime,
        dev: usize,
        reader: usize,
        shard: usize,
        issued: SimTime,
        bytes: u64,
    ) {
        let lustre = self.lustre;
        let Some(ms) = self.monarch.as_mut() else {
            return;
        };
        let tr = Arc::clone(ms.telemetry.trace());
        if !tr.is_enabled() {
            return;
        }
        let tid = SIM_READER_TRACK0 + reader as u64;
        let t0 = vmicros(issued);
        let dur = vmicros(now - issued).max(1);
        let read_id = tr.next_id();
        let tier = ms
            .tier_dev
            .iter()
            .position(|&d| d == dev)
            .unwrap_or(ms.tier_dev.len() - 1);
        let tier_name = ms
            .hierarchy
            .tier(tier)
            .map(|t| t.name.clone())
            .unwrap_or_default();
        // The lookup and resolve steps are instantaneous in virtual time;
        // zero-duration children keep the tree shape identical.
        tr.record(
            SpanRecord::new(names::METADATA_LOOKUP, "read", tid, t0, 0)
                .with_id(tr.next_id())
                .with_parent(read_id),
        );
        tr.record(
            SpanRecord::new(names::TIER_RESOLVE, "read", tid, t0, 0)
                .with_id(tr.next_id())
                .with_parent(read_id),
        );
        let mut pread = SpanRecord::new(names::DRIVER_PREAD, "read", tid, t0, dur)
            .with_id(tr.next_id())
            .with_parent(read_id)
            .arg_str("tier", tier_name)
            .arg_u64("bytes", bytes);
        if dev == lustre {
            if let Some(flow) = ms.flow_start_pending.remove(&shard) {
                pread = pread.with_flow(flow, FlowPhase::Start);
            }
        }
        tr.record(pread);
        tr.record(
            SpanRecord::new(names::READ, "read", tid, t0, dur)
                .with_id(read_id)
                .arg_str("file", self.shard_names[shard].clone())
                .arg_u64("bytes", bytes),
        );
    }

    /// Feed one completed chunk read to the access profiler, classified
    /// the way the real read path classifies: a local-tier serve is
    /// `Fast`; a PFS serve is `PrefetchLag` when the epoch plan covers
    /// the shard, `LaneSaturated` when its copy is already in flight,
    /// and `PfsCold` otherwise. Virtual lookups are instantaneous, so
    /// the whole device time is pread time.
    fn profile_chunk_read(
        &mut self,
        now: SimTime,
        dev: usize,
        shard: usize,
        issued: SimTime,
        bytes: u64,
    ) {
        let lustre = self.lustre;
        let Some(ms) = self.monarch.as_ref() else {
            return;
        };
        let profiler = ms.telemetry.observe().profiler();
        if !profiler.is_enabled() {
            return;
        }
        let name = &self.shard_names[shard];
        let tier = ms
            .tier_dev
            .iter()
            .position(|&d| d == dev)
            .unwrap_or(ms.tier_dev.len() - 1);
        let class = if dev != lustre {
            ReadClass::Fast
        } else if matches!(
            ms.meta.get(name),
            Some(info) if info.tier != ms.tier_dev.len() - 1
                && info.state == PlacementState::Placed
        ) {
            // Resident on a local tier but served from the PFS: the tier
            // is quarantined (or failing) and the read fell back.
            ReadClass::DegradedFallback
        } else if ms.prefetch_lookahead > 0 && ms.plan_pos.contains_key(&shard) {
            ReadClass::PrefetchLag
        } else if matches!(
            ms.meta.get(name),
            Some(info) if matches!(info.state, PlacementState::Copying { .. })
        ) {
            ReadClass::LaneSaturated
        } else {
            ReadClass::PfsCold
        };
        let d = vmicros(now - issued);
        profiler.record_read(
            name,
            tier,
            bytes,
            class,
            false,
            ReadTiming {
                wall_us: d,
                pread_us: d,
                lock_queue_us: 0,
                copy_wait_us: 0,
            },
            vmicros(now),
        );
    }

    // -- transfer completions ----------------------------------------------

    fn on_transfer_done(&mut self, now: SimTime, dev: usize, purpose: Purpose, bytes: u64) {
        match purpose {
            Purpose::Chunk {
                reader,
                shard,
                issued,
                traced,
            } => {
                let samples = bytes as f64 * self.samples_per_byte[shard];
                self.inflight_samples -= samples;
                debug_assert!(
                    self.inflight_samples > -0.5,
                    "inflight underflow: epoch {} reader {reader} shard {shard} bytes {bytes} \
                     inflight {}",
                    self.epoch,
                    self.inflight_samples
                );
                self.buffered_samples += samples;
                self.readers[reader].inflight = false;
                if traced {
                    self.record_read_spans(now, dev, reader, shard, issued, bytes);
                }
                self.profile_chunk_read(now, dev, shard, issued, bytes);

                // Cache spills: vanilla-caching epoch 1, or MONARCH with
                // the full-file fetch disabled.
                let spill_to = match self.mode {
                    ModeTag::VanillaCaching if self.epoch == 0 && dev == self.lustre => {
                        Some((self.ssd, shard))
                    }
                    ModeTag::Monarch if dev == self.lustre => {
                        let ms = self.monarch.as_ref().expect("monarch");
                        if !ms.full_fetch {
                            ms.copy_target
                                .get(&shard)
                                .map(|&tier| (ms.tier_dev[tier], shard))
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                if let Some((to, shard)) = spill_to {
                    // tf.data's cache spills the expanded record form;
                    // MONARCH's chunk-cache ablation spills raw bytes.
                    let expansion = if self.mode == ModeTag::VanillaCaching {
                        self.cache_expansion
                    } else {
                        1.0
                    };
                    let weight = self.devs[to].spec.write_weight * expansion;
                    let latency = self.sample_latency(to);
                    let id = self.devs[to]
                        .ps
                        .start(now, bytes, latency, Kind::Write, weight);
                    self.purpose
                        .insert((to, id.0), Purpose::CacheWrite { shard });
                    self.pending_cache_writes += 1;
                }

                self.try_start_compute(now);
                self.reader_advance(now, reader);
                self.maybe_finish_epoch(now);
            }
            Purpose::CopyFetch { shard } => {
                // Stage 2 of a placement copy: write to the chosen tier.
                // The worker slot frees here — the write is a separate
                // pool task in the paper's design. The write stream gets a
                // moderate share boost: sequential, but it must not starve
                // the readers now being served from this tier.
                let share = 1.0;
                let ms = self.monarch.as_mut().expect("monarch");
                let tier = *ms.copy_target.get(&shard).expect("copy target recorded");
                ms.idle_workers += 1;
                ms.pending_copy_writes += 1;
                let tr = Arc::clone(ms.telemetry.trace());
                let fetch_started = ms.copy_started.get(&shard).copied().unwrap_or(now);
                let src_name = ms.hierarchy.source().name.clone();
                if let Some(ct) = ms.copy_trace.get_mut(&shard) {
                    if tr.is_enabled() {
                        tr.record(
                            SpanRecord::new(
                                names::COPY_READ,
                                "copy",
                                ct.tid,
                                vmicros(fetch_started),
                                vmicros(now - fetch_started),
                            )
                            .with_id(tr.next_id())
                            .with_parent(ct.exec_id)
                            .arg_str("tier", src_name)
                            .arg_u64("bytes", bytes),
                        );
                    }
                    ct.write_started = now;
                }
                let to = ms.tier_dev[tier];
                let weight = self.devs[to].spec.write_weight;
                let latency = self.sample_latency(to);
                let id = self.devs[to].ps.start_weighted(
                    now,
                    bytes,
                    latency,
                    Kind::Write,
                    weight,
                    share,
                );
                self.purpose
                    .insert((to, id.0), Purpose::CopyWrite { shard });
                self.dispatch_copy_workers(now);
                // The fetch stage moved the shard into memory: mark it
                // buffer-ready and serve any parked readers out of the
                // copy's buffer while the write-back drains.
                let released = {
                    let ms = self.monarch.as_mut().expect("monarch");
                    if ms.prefetch_lookahead > 0 {
                        ms.buffer_ready.insert(shard);
                    }
                    if ms.prefetch_issued.contains_key(&shard) {
                        // The staged bytes are servable from here on:
                        // this is the instant the waste detector compares
                        // later reads against.
                        ms.telemetry.observe().profiler().record_prefetch_staged(
                            &self.shard_names[shard],
                            self.geom.shards[shard].bytes,
                            vmicros(now),
                        );
                    }
                    ms.waiting_readers.remove(&shard).unwrap_or_default()
                };
                if !released.is_empty() {
                    let ms = self.monarch.as_mut().expect("monarch");
                    if ms.prefetch_issued.contains_key(&shard) {
                        ms.telemetry.stats().prefetch_hit();
                    }
                    for &r in &released {
                        self.readers[r].inflight = false;
                        self.serve_from_buffer(now, r, shard);
                    }
                    for r in released {
                        self.reader_advance(now, r);
                    }
                }
            }
            Purpose::CopyWrite { shard } => {
                let name = self.shard_names[shard].clone();
                let size = self.geom.shards[shard].bytes;
                // Injected fault: the destination device failed (outage /
                // error roll) or filled (the simulated ENOSPC) before the
                // write-back drained — the copy aborts, its reservation is
                // released, and the shard stays retriable so recovery
                // re-admits it.
                let mut write_fault: Option<ErrorClass> = None;
                if let Some(plan) = self.fault_plan.as_ref() {
                    let t_s = now.as_secs_f64();
                    let dev_name = &self.devs[dev].spec.name;
                    if plan.outage(dev_name, t_s) || plan.error_fires(dev_name, t_s, self.fault_ops)
                    {
                        write_fault = Some(ErrorClass::Transient);
                    } else if plan.write_full(dev_name, t_s) {
                        write_fault = Some(ErrorClass::Capacity);
                    }
                    self.fault_ops += 1;
                }
                if let Some(class) = write_fault {
                    self.fail_copy_write(now, shard, &name, size, class);
                    return;
                }
                let ms = self.monarch.as_mut().expect("monarch");
                let tier = ms.copy_target.remove(&shard).expect("copy target");
                // Write-back drained: the copy buffer is gone; later reads
                // of this shard go through the tier device as normal.
                ms.buffer_ready.remove(&shard);
                ms.meta.finish_copy(&name, tier).expect("finish copy");
                ms.policy.on_placed(&name, size, tier);
                ms.pending_copy_writes -= 1;
                ms.telemetry.stats().copy_completed();
                ms.telemetry.stats().record_write(tier, size);
                ms.telemetry.observe().timeline().record_at(
                    vmicros(now),
                    &name,
                    tier,
                    ResidencyEventKind::Admitted,
                    if ms.prefetch_issued.contains_key(&shard) {
                        TransitionCause::Plan
                    } else {
                        TransitionCause::Demand
                    },
                );
                let started = ms.copy_started.remove(&shard);
                let micros = match started {
                    Some(at) => {
                        let d = now - at;
                        ms.telemetry.copy_duration().record(vnanos(d));
                        vmicros(d)
                    }
                    None => 0,
                };
                ms.telemetry.event_at(
                    vmicros(now),
                    EventKind::CopyCompleted {
                        file: name.clone(),
                        tier,
                        bytes: size,
                        micros,
                    },
                );
                if let Some(ct) = ms.copy_trace.remove(&shard) {
                    let tr = Arc::clone(ms.telemetry.trace());
                    if tr.is_enabled() {
                        let dst = ms
                            .hierarchy
                            .tier(tier)
                            .map(|t| t.name.clone())
                            .unwrap_or_default();
                        tr.record(
                            SpanRecord::new(
                                names::COPY_WRITE,
                                "copy",
                                ct.tid,
                                vmicros(ct.write_started),
                                vmicros(now - ct.write_started),
                            )
                            .with_id(tr.next_id())
                            .with_parent(ct.exec_id)
                            .arg_str("tier", dst.clone())
                            .arg_u64("bytes", size),
                        );
                        tr.record(
                            SpanRecord::new(
                                names::METADATA_REGISTER,
                                "copy",
                                ct.tid,
                                vmicros(now),
                                0,
                            )
                            .with_id(tr.next_id())
                            .with_parent(ct.exec_id)
                            .arg_str("tier", dst),
                        );
                        let t_exec = vmicros(started.unwrap_or(now));
                        tr.record(
                            SpanRecord::new(
                                names::COPY_EXEC,
                                "copy",
                                ct.tid,
                                t_exec,
                                vmicros(now).saturating_sub(t_exec),
                            )
                            .with_id(ct.exec_id)
                            .with_flow(ct.flow, FlowPhase::Finish)
                            .arg_str("file", name.clone())
                            .arg_u64("bytes", size)
                            .arg_str("outcome", "completed"),
                        );
                    }
                }
                self.dispatch_copy_workers(now);
                // Option (i): training starts once staging fully drains.
                if self.prestaging {
                    let ms = self.monarch.as_ref().expect("monarch");
                    if ms.lanes.queued(Lane::Demand) == 0
                        && ms.pending_copy_writes == 0
                        && ms.copy_target.is_empty()
                        && ms.idle_workers == ms.pool_threads
                    {
                        self.prestaging = false;
                        self.prestage_seconds = (now - self.prestage_started).as_secs_f64();
                        self.q.schedule(now, Ev::StartEpoch);
                    }
                }
            }
            Purpose::CacheWrite { shard } => {
                self.pending_cache_writes -= 1;
                if self.mode == ModeTag::Monarch {
                    // Chunk-cache ablation: mark the shard placed once all
                    // of it has been spilled.
                    let total = self.geom.shards[shard].bytes;
                    let name = self.shard_names[shard].clone();
                    let ms = self.monarch.as_mut().expect("monarch");
                    if let Some(written) = ms.chunk_written.get_mut(&shard) {
                        *written += bytes;
                        if *written >= total {
                            let tier = *ms.copy_target.get(&shard).expect("target");
                            ms.copy_target.remove(&shard);
                            ms.chunk_written.remove(&shard);
                            ms.meta.finish_copy(&name, tier).expect("finish");
                            ms.telemetry.stats().copy_completed();
                            ms.telemetry.stats().record_write(tier, total);
                            ms.telemetry.observe().timeline().record_at(
                                vmicros(now),
                                &name,
                                tier,
                                ResidencyEventKind::Admitted,
                                TransitionCause::Demand,
                            );
                            ms.telemetry.event_at(
                                vmicros(now),
                                EventKind::CopyCompleted {
                                    file: name.clone(),
                                    tier,
                                    bytes: total,
                                    micros: 0,
                                },
                            );
                        }
                    }
                }
                // A spill slot freed: unblock stalled readers, and let a
                // flush-gated epoch end once the last write drains.
                for r in 0..self.readers.len() {
                    self.reader_advance(now, r);
                }
                self.maybe_finish_epoch(now);
            }
        }
    }

    /// Abort an in-flight placement write whose destination device failed
    /// under the fault plan: release the capacity reservation, feed the
    /// tier's breaker, journal a `CopyRequeued`, and leave the shard
    /// `Unplaced` so a post-recovery read re-admits it.
    fn fail_copy_write(
        &mut self,
        now: SimTime,
        shard: usize,
        name: &str,
        size: u64,
        class: ErrorClass,
    ) {
        let t_us = vmicros(now);
        {
            let ms = self.monarch.as_mut().expect("monarch");
            let tier = ms.copy_target.remove(&shard).expect("copy target");
            ms.buffer_ready.remove(&shard);
            ms.pending_copy_writes -= 1;
            ms.copy_started.remove(&shard);
            ms.copy_trace.remove(&shard);
            ms.prefetch_issued.remove(&shard);
            ms.policy.unpin(name);
            if let Some(quota) = ms.hierarchy.tier(tier).ok().and_then(|t| t.quota.as_ref()) {
                quota.release(size);
            }
            let _ = ms.meta.abort_copy(name, false);
            let health = ms.hierarchy.health();
            let cfg = health.config();
            let (state, transitioned) = health.tier(tier).record_error(class, &cfg, t_us);
            if transitioned && state == TierState::Quarantined {
                ms.telemetry.stats().tier_quarantine();
                ms.telemetry.event_at(
                    t_us,
                    EventKind::TierQuarantined {
                        tier,
                        reason: "copy write-back failed under injected fault".into(),
                    },
                );
            }
            ms.telemetry.stats().copy_requeue();
            ms.telemetry.event_at(
                t_us,
                EventKind::CopyRequeued {
                    file: name.to_string(),
                    reason: "target tier failed during write-back".into(),
                },
            );
            ms.telemetry.observe().timeline().record_at(
                t_us,
                name,
                tier,
                ResidencyEventKind::Canceled,
                TransitionCause::Demand,
            );
        }
        self.dispatch_copy_workers(now);
        // Option (i): a failed write still counts toward staging drain.
        if self.prestaging {
            let ms = self.monarch.as_ref().expect("monarch");
            if ms.lanes.queued(Lane::Demand) == 0
                && ms.pending_copy_writes == 0
                && ms.copy_target.is_empty()
                && ms.idle_workers == ms.pool_threads
            {
                self.prestaging = false;
                self.prestage_seconds = (now - self.prestage_started).as_secs_f64();
                self.q.schedule(now, Ev::StartEpoch);
            }
        }
    }

    // -- MONARCH clairvoyant prefetch ----------------------------------------

    /// Advance the foreground read cursor past `shard`, count a prefetch
    /// hit when a staged shard is read from a local tier, and let the
    /// prefetcher issue further plan entries the cursor unlocked.
    fn prefetch_note_read(&mut self, now: SimTime, shard: usize) {
        {
            let Some(ms) = self.monarch.as_mut() else {
                return;
            };
            if ms.prefetch_lookahead == 0 {
                return;
            }
            if let Some(&pos) = ms.plan_pos.get(&shard) {
                ms.plan_cursor = ms.plan_cursor.max(pos + 1);
            }
            // The foreground cursor reached the shard: it is no longer a
            // staged-but-unread entry, so it re-enters the evictable set,
            // and the clairvoyant ranking advances past this plan entry.
            ms.policy.unpin(&self.shard_names[shard]);
            ms.policy.note_plan_read(&self.shard_names[shard]);
            let source = ms.tier_dev.len() - 1;
            if let Some(read_seen) = ms.prefetch_issued.get_mut(&shard) {
                if !*read_seen {
                    *read_seen = true;
                    if let Some(info) = ms.meta.get(&self.shard_names[shard]) {
                        if info.tier != source && info.state == PlacementState::Placed {
                            ms.telemetry.stats().prefetch_hit();
                        }
                    }
                }
            }
        }
        self.pump_prefetch(now);
    }

    /// Park reader `r` at the head of `shard` when a prefetch-issued copy
    /// of it is still streaming in from the PFS: the reader is woken by
    /// that fetch's completion and served from the copy's buffer, instead
    /// of double-reading the shard synchronously from the PFS while the
    /// bulk copy streams the same bytes. Reactive mode (`lookahead == 0`)
    /// never parks, and neither do shards the prefetcher did not issue —
    /// demand copies keep today's read-through behaviour byte for byte.
    fn prefetch_park(&mut self, now: SimTime, r: usize, shard: usize) -> bool {
        let name = &self.shard_names[shard];
        let parked = match self.monarch.as_mut() {
            Some(ms)
                if ms.prefetch_lookahead > 0
                    && ms.prefetch_issued.contains_key(&shard)
                    && !ms.buffer_ready.contains(&shard) =>
            {
                let copying = matches!(
                    ms.meta.get(name),
                    Some(info) if matches!(info.state, PlacementState::Copying { .. })
                );
                if copying {
                    ms.waiting_readers.entry(shard).or_default().push(r);
                    ms.parked_at.insert(r, now);
                    true
                } else {
                    false
                }
            }
            _ => false,
        };
        if parked {
            self.readers[r].inflight = true;
        }
        parked
    }

    /// Serve the whole of `shard` to reader `r` when its staged fetch has
    /// already landed in memory (write-back still draining). Counts as a
    /// prefetch hit. Returns false when the shard is not buffer-ready.
    fn clairvoyant_buffer_serve(&mut self, now: SimTime, r: usize, shard: usize) -> bool {
        let hit = match self.monarch.as_mut() {
            Some(ms)
                if ms.prefetch_lookahead > 0
                    && ms.prefetch_issued.contains_key(&shard)
                    && ms.buffer_ready.contains(&shard) =>
            {
                ms.telemetry.stats().prefetch_hit();
                true
            }
            _ => false,
        };
        if hit {
            self.serve_from_buffer(now, r, shard);
        }
        hit
    }

    /// Consume `shard` straight out of the staging copy's in-memory
    /// buffer: the placement fetch already moved the bytes into RAM, so
    /// the foreground read costs no further device time — only the
    /// trainer's own consumption rate.
    fn serve_from_buffer(&mut self, now: SimTime, r: usize, shard: usize) {
        let bytes = self.geom.shards[shard].bytes;
        if let Some(ms) = self.monarch.as_mut() {
            let tier = ms.copy_target.get(&shard).copied();
            if let Some(tier) = tier {
                ms.telemetry.stats().record_read(tier, bytes);
            }
            let waited = ms
                .parked_at
                .remove(&r)
                .map(|at| vmicros(now - at))
                .unwrap_or(0);
            let profiler = ms.telemetry.observe().profiler();
            if profiler.is_enabled() {
                // A reader that parked on the staging copy charges its
                // wait to the prefetch-lag bucket (the prefetcher knew,
                // but was late); an un-parked buffer hit is a free read.
                let (class, timing) = if waited > 0 {
                    (
                        ReadClass::PrefetchLag,
                        ReadTiming {
                            wall_us: waited,
                            pread_us: 0,
                            lock_queue_us: 0,
                            copy_wait_us: waited,
                        },
                    )
                } else {
                    (ReadClass::Fast, ReadTiming::default())
                };
                profiler.record_read(
                    &self.shard_names[shard],
                    tier.unwrap_or(0),
                    bytes,
                    class,
                    true,
                    timing,
                    vmicros(now),
                );
            }
        }
        self.readers[r].cur = Some((shard, bytes));
        self.buffered_samples += bytes as f64 * self.samples_per_byte[shard];
        self.try_start_compute(now);
    }

    /// Issue plan entries into the prefetch lane up to `cursor +
    /// lookahead`. Entries already copying or placed resolve silently
    /// (their `begin_copy` CAS fails).
    fn pump_prefetch(&mut self, now: SimTime) {
        let mut scheduled = false;
        {
            let ms = self.monarch.as_mut().expect("monarch");
            if ms.prefetch_lookahead == 0 {
                return;
            }
            while ms.plan_issued < ms.plan.len()
                && ms.plan_issued < ms.plan_cursor + ms.prefetch_lookahead
            {
                let shard = ms.plan[ms.plan_issued];
                ms.plan_issued += 1;
                let name = &self.shard_names[shard];
                if Self::begin_admitted_copy(
                    ms,
                    now,
                    name,
                    self.geom.shards[shard].bytes,
                    DecisionPoint::PrefetchAdmit,
                ) {
                    ms.lanes.push(Lane::Prefetch, shard);
                    ms.copy_enqueued.insert(shard, now);
                    ms.prefetch_issued.insert(shard, false);
                    // Staged-but-unread entries are pinned against
                    // eviction until the foreground cursor passes them.
                    ms.policy.pin(name);
                    ms.telemetry.stats().copy_scheduled();
                    ms.telemetry.stats().prefetch_scheduled();
                    ms.telemetry.event_at(
                        vmicros(now),
                        EventKind::PrefetchScheduled {
                            file: name.clone(),
                            bytes: self.geom.shards[shard].bytes,
                        },
                    );
                    scheduled = true;
                }
            }
        }
        if scheduled {
            self.dispatch_copy_workers(now);
        }
    }

    // -- MONARCH copy pool ---------------------------------------------------

    /// CAS the shard into `Copying` and ask the admission gate, with the
    /// verdict journalled like the real engine's. A denial reverts the
    /// CAS (non-terminal), so a later read re-asks once the access
    /// profile has warmed.
    fn begin_admitted_copy(
        ms: &mut MonarchSim,
        now: SimTime,
        name: &str,
        bytes: u64,
        point: DecisionPoint,
    ) -> bool {
        if !ms.meta.begin_copy(name, 0).unwrap_or(false) {
            return false;
        }
        let admitted = ms.policy.admit(name, bytes, point);
        let (verdict, reason) = match (admitted, point) {
            (true, DecisionPoint::DemandAdmit) => {
                ("admit", "demand miss admitted to the copy pipeline")
            }
            (true, _) => ("admit", "plan entry admitted to the prefetch lane"),
            (false, _) => (
                "deny",
                "admission policy refused the copy; the file stays on the PFS",
            ),
        };
        ms.telemetry.event_at(
            vmicros(now),
            EventKind::PolicyDecision {
                file: name.to_string(),
                point: point.as_str().to_string(),
                policy: ms.policy.name().to_string(),
                verdict: verdict.into(),
                reason: reason.into(),
            },
        );
        if !admitted {
            ms.telemetry.stats().policy_denial();
            let _ = ms.meta.abort_copy(name, false);
        }
        admitted
    }

    /// Journal a policy-driven eviction and update the policy book — the
    /// companion of `begin_admitted_copy` for the evict side.
    fn note_policy_evicted(ms: &MonarchSim, now: SimTime, victim: &str, reason: &str) {
        ms.policy.on_evicted(victim);
        ms.telemetry.event_at(
            vmicros(now),
            EventKind::PolicyDecision {
                file: victim.to_string(),
                point: DecisionPoint::PressureEvict.as_str().to_string(),
                policy: ms.policy.name().to_string(),
                verdict: "evict".into(),
                reason: reason.into(),
            },
        );
    }

    /// Resolve a copy that found no placement. A quarantined tier requeues
    /// the shard (non-terminal abort, so a post-recovery read re-admits
    /// it); a genuinely full hierarchy skips it terminally, as before.
    fn skip_or_requeue(ms: &mut MonarchSim, now: SimTime, name: &str) {
        let quarantined = ms
            .hierarchy
            .local_tiers()
            .any(|t| ms.hierarchy.health().tier(t.id).is_quarantined());
        if quarantined {
            ms.telemetry.stats().copy_requeue();
            ms.telemetry.event_at(
                vmicros(now),
                EventKind::CopyRequeued {
                    file: name.to_string(),
                    reason: "tier quarantined".into(),
                },
            );
            let _ = ms.meta.abort_copy(name, false);
        } else {
            ms.skips += 1;
            ms.telemetry.stats().placement_skip();
            ms.telemetry.event_at(
                vmicros(now),
                EventKind::PlacementSkipped {
                    file: name.to_string(),
                    reason: "no local tier had room".into(),
                },
            );
            let _ = ms.meta.abort_copy(name, true);
        }
    }

    fn dispatch_copy_workers(&mut self, now: SimTime) {
        loop {
            let ms = self.monarch.as_mut().expect("monarch");
            if ms.idle_workers == 0 || ms.pending_copy_writes >= 2 * ms.pool_threads {
                return;
            }
            let Some((shard, lane)) = ms.lanes.pop() else {
                return;
            };
            let prefetch_lane = lane == Lane::Prefetch;
            let name = self.shard_names[shard].clone();
            let size = self.geom.shards[shard].bytes;
            match ms.policy.place(&ms.hierarchy, &name, size) {
                Ok(Some(decision)) => {
                    // Eviction-capable ablation policies: release victims.
                    let mut reserved = decision.evict.is_empty();
                    if !reserved {
                        let tier = ms.hierarchy.tier(decision.tier).expect("tier exists");
                        for victim in &decision.evict {
                            if let Some(vinfo) = ms.meta.get(victim) {
                                if vinfo.tier == decision.tier {
                                    ms.meta
                                        .evict_to(victim, ms.hierarchy.source_id())
                                        .expect("evict");
                                    tier.quota
                                        .as_ref()
                                        .expect("local tier quota")
                                        .release(vinfo.size);
                                    ms.telemetry.stats().record_evict(decision.tier);
                                    ms.telemetry.event_at(
                                        vmicros(now),
                                        EventKind::Evicted {
                                            file: victim.clone(),
                                            tier: decision.tier,
                                            bytes: vinfo.size,
                                        },
                                    );
                                    ms.telemetry.observe().timeline().record_at(
                                        vmicros(now),
                                        victim,
                                        decision.tier,
                                        ResidencyEventKind::Evicted,
                                        TransitionCause::Policy,
                                    );
                                    Self::note_policy_evicted(
                                        ms,
                                        now,
                                        victim,
                                        "selected by the eviction policy to make room for an \
                                         incoming copy",
                                    );
                                }
                            }
                        }
                        reserved = tier
                            .quota
                            .as_ref()
                            .expect("local tier quota")
                            .try_reserve(size);
                    }
                    if !reserved {
                        ms.copy_enqueued.remove(&shard);
                        ms.copy_flow.remove(&shard);
                        ms.flow_start_pending.remove(&shard);
                        Self::skip_or_requeue(ms, now, &name);
                        // A parked reader must not wait on a copy that
                        // will never land: fall back to reading through.
                        ms.prefetch_issued.remove(&shard);
                        ms.policy.unpin(&name);
                        if let Some(stranded) = ms.waiting_readers.remove(&shard) {
                            for &r in &stranded {
                                ms.parked_at.remove(&r);
                                self.readers[r].inflight = false;
                            }
                            for r in stranded {
                                self.reader_advance(now, r);
                            }
                        }
                        continue;
                    }
                    let queued_at = ms.copy_enqueued.remove(&shard);
                    if let Some(at) = queued_at {
                        let wait = vnanos(now - at);
                        if prefetch_lane {
                            ms.telemetry.queue_wait_prefetch().record(wait);
                        } else {
                            ms.telemetry.queue_wait().record(wait);
                        }
                    }
                    ms.copy_started.insert(shard, now);
                    ms.telemetry
                        .event_at(vmicros(now), EventKind::CopyStarted { file: name.clone() });
                    let tr = Arc::clone(ms.telemetry.trace());
                    if tr.is_enabled() {
                        if let Some(flow) = ms.copy_flow.remove(&shard) {
                            let exec_id = tr.next_id();
                            let tid = SIM_COPY_TRACK0 + (shard % ms.pool_threads) as u64;
                            if let Some(at) = queued_at {
                                tr.record(
                                    SpanRecord::new(
                                        names::QUEUE_WAIT,
                                        "copy",
                                        QUEUE_TRACK,
                                        vmicros(at),
                                        vmicros(now - at),
                                    )
                                    .with_id(tr.next_id())
                                    .arg_str("file", name.clone()),
                                );
                            }
                            let mut pd = SpanRecord::new(
                                names::PLACEMENT_DECIDE,
                                "copy",
                                tid,
                                vmicros(now),
                                0,
                            )
                            .with_id(tr.next_id())
                            .with_parent(exec_id);
                            for (key, value) in decision.trace_args(&ms.hierarchy) {
                                pd.args.push((key, value));
                            }
                            tr.record(pd);
                            ms.copy_trace.insert(
                                shard,
                                CopyTrace {
                                    flow,
                                    exec_id,
                                    tid,
                                    write_started: SimTime::ZERO,
                                },
                            );
                        }
                    }
                    {
                        let quota = ms
                            .hierarchy
                            .tier(decision.tier)
                            .expect("tier exists")
                            .quota
                            .as_ref()
                            .expect("local tier quota");
                        ms.telemetry.event_at(
                            vmicros(now),
                            EventKind::PlacementDecided {
                                file: name.clone(),
                                tier: decision.tier,
                                used: quota.used(),
                                capacity: quota.capacity(),
                            },
                        );
                    }
                    ms.copy_target.insert(shard, decision.tier);
                    ms.idle_workers -= 1;
                    let latency = self.sample_latency(self.lustre);
                    let lustre = self.lustre;
                    let share = self.bulk_share;
                    let id = self.devs[lustre].ps.start_weighted(
                        now,
                        size,
                        latency,
                        Kind::Read,
                        1.0,
                        share,
                    );
                    self.purpose
                        .insert((lustre, id.0), Purpose::CopyFetch { shard });
                }
                Ok(None) => {
                    ms.copy_enqueued.remove(&shard);
                    ms.copy_flow.remove(&shard);
                    ms.flow_start_pending.remove(&shard);
                    Self::skip_or_requeue(ms, now, &name);
                    ms.prefetch_issued.remove(&shard);
                    ms.policy.unpin(&name);
                    if let Some(stranded) = ms.waiting_readers.remove(&shard) {
                        for &r in &stranded {
                            ms.parked_at.remove(&r);
                            self.readers[r].inflight = false;
                        }
                        for r in stranded {
                            self.reader_advance(now, r);
                        }
                    }
                }
                Err(_) => unreachable!("sim policies are infallible"),
            }
        }
    }

    // -- trainer -------------------------------------------------------------

    fn try_start_compute(&mut self, now: SimTime) {
        if self.computing {
            return;
        }
        let remaining = self.epoch_samples - self.consumed;
        if remaining <= 0.25 {
            return;
        }
        let batch = (self.model.batch_size as f64).min(remaining);
        let readers_done = self.readers.iter().all(|r| r.done);
        let take = if self.buffered_samples + 0.25 >= batch {
            batch.min(self.buffered_samples)
        } else if readers_done && self.buffered_samples > 0.25 {
            // Final ragged batch.
            self.buffered_samples
        } else {
            return;
        };
        self.buffered_samples -= take;
        self.computing = true;
        self.cur_batch = take;
        let step = SimTime::from_secs_f64(take * self.model.per_sample_step);
        self.q.schedule(now + step, Ev::ComputeDone);
    }

    fn on_compute_done(&mut self, now: SimTime) {
        self.computing = false;
        self.consumed += self.cur_batch;
        self.total_consumed += self.cur_batch;
        self.gpu_busy += self.cur_batch * self.model.per_sample_step * self.model.gpu_fraction;
        self.cur_batch = 0.0;
        self.try_start_compute(now);
        // The buffer drained: unblock any waiting readers.
        for r in 0..self.readers.len() {
            self.reader_advance(now, r);
        }
        self.maybe_finish_epoch(now);
    }
}
