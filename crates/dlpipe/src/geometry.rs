//! Dataset geometry for the simulator: shard sizes and record counts,
//! without materialising any bytes.
//!
//! The paper's dataset preparation packs a fixed number of images into each
//! TFRecord shard (the common ImageNet recipe). That geometry is what makes
//! the paper's reported counts line up: at 1,024 records per shard,
//!
//! - the 100 GiB / 900k-image dataset yields ≈880 shards of ≈117 MiB and
//!   ≈410k chunk reads per epoch at 256 KiB, and
//! - the 200 GiB / 3M-image dataset yields ≈2,930 shards of ≈70 MiB and
//!   ≈800k chunk reads per epoch (the paper reports 798,340),
//! - and a 13 s / ≈50 s metadata-initialisation scan at ~16 ms per MDS op.

use serde::Serialize;
use simfs::rng::SimRng;
use tfrecord::FRAME_OVERHEAD;

/// One shard: size on disk plus how many records it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ShardGeom {
    /// Total shard size in bytes (payload + framing).
    pub bytes: u64,
    /// Number of records packed into the shard.
    pub records: u64,
}

/// The whole dataset as seen by the simulator.
#[derive(Debug, Clone, Serialize)]
pub struct DatasetGeom {
    /// Human-readable label (experiment output).
    pub name: String,
    /// All shards, in file order.
    pub shards: Vec<ShardGeom>,
}

impl DatasetGeom {
    /// Build a geometry of `num_samples` records with `mean_sample_bytes`
    /// (±`jitter` uniform), packed `records_per_shard` to a shard.
    #[must_use]
    pub fn synth(
        name: impl Into<String>,
        num_samples: u64,
        mean_sample_bytes: u64,
        jitter: f64,
        records_per_shard: u64,
        seed: u64,
    ) -> Self {
        let mut rng = SimRng::new(seed);
        let jitter = jitter.clamp(0.0, 0.99);
        let mut shards = Vec::with_capacity((num_samples / records_per_shard + 1) as usize);
        let mut remaining = num_samples;
        while remaining > 0 {
            let n = remaining.min(records_per_shard);
            // Sum of n jittered sample sizes; sampling per record would be
            // 900k draws — the per-shard aggregate has the same mean and
            // nearly the same variance contribution at this scale.
            let f = 1.0 + jitter * (rng.unit() * 2.0 - 1.0) / (n as f64).sqrt();
            let payload = (mean_sample_bytes as f64 * n as f64 * f) as u64;
            shards.push(ShardGeom {
                bytes: payload + n * FRAME_OVERHEAD,
                records: n,
            });
            remaining -= n;
        }
        Self {
            name: name.into(),
            shards,
        }
    }

    /// The paper's 100 GiB ImageNet-1k variant (900k images).
    #[must_use]
    pub fn imagenet_100g() -> Self {
        Self::synth("imagenet-100g", 900_000, 119_300, 0.25, 1024, 0x0100)
    }

    /// The paper's 200 GiB ImageNet-1k variant (3M smaller images).
    #[must_use]
    pub fn imagenet_200g() -> Self {
        Self::synth("imagenet-200g", 3_000_000, 71_600, 0.25, 1024, 0x0200)
    }

    /// A scaled-down geometry for fast tests. Shards stay *large relative
    /// to the chunk size* (hundreds of chunks per shard), because MONARCH's
    /// epoch-1 benefit — the full-shard fetch racing ahead of the chunk
    /// readers — vanishes for small shards.
    #[must_use]
    pub fn miniature(name: impl Into<String>, num_samples: u64, seed: u64) -> Self {
        Self::synth(name, num_samples, 100_000, 0.25, 512, seed)
    }

    /// Build a geometry from explicit shard descriptors — e.g. measured
    /// from files on disk, so a simulated run models exactly the bytes a
    /// real run reads (the cross-validation tests rely on this).
    #[must_use]
    pub fn from_shards(name: impl Into<String>, shards: Vec<ShardGeom>) -> Self {
        Self {
            name: name.into(),
            shards,
        }
    }

    /// Total size in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.bytes).sum()
    }

    /// Total records.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        self.shards.iter().map(|s| s.records).sum()
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Chunk reads needed to scan everything once at `chunk_bytes`.
    #[must_use]
    pub fn chunk_reads_per_epoch(&self, chunk_bytes: u64) -> u64 {
        self.shards
            .iter()
            .map(|s| s.bytes.div_ceil(chunk_bytes.max(1)))
            .sum()
    }

    /// Canonical shard file name for shard `i` (matches the on-disk
    /// generator, so real and simulated runs agree on the namespace).
    #[must_use]
    pub fn shard_name(i: usize) -> String {
        tfrecord::synth::shard_name(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: f64 = (1u64 << 30) as f64;

    #[test]
    fn imagenet_100g_matches_paper_geometry() {
        let g = DatasetGeom::imagenet_100g();
        assert_eq!(g.total_records(), 900_000);
        let gib = g.total_bytes() as f64 / GIB;
        assert!((95.0..105.0).contains(&gib), "{gib} GiB");
        assert!(
            (850..900).contains(&g.num_shards()),
            "{} shards",
            g.num_shards()
        );
        let ops = g.chunk_reads_per_epoch(256 << 10);
        assert!((380_000..440_000).contains(&ops), "{ops} ops/epoch");
    }

    #[test]
    fn imagenet_200g_matches_paper_geometry() {
        let g = DatasetGeom::imagenet_200g();
        assert_eq!(g.total_records(), 3_000_000);
        let gib = g.total_bytes() as f64 / GIB;
        assert!((190.0..210.0).contains(&gib), "{gib} GiB");
        assert!(
            (2900..2960).contains(&g.num_shards()),
            "{} shards",
            g.num_shards()
        );
        // Paper §IV-A: 798,340 ops per epoch.
        let ops = g.chunk_reads_per_epoch(256 << 10);
        assert!((760_000..840_000).contains(&ops), "{ops} ops/epoch");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = DatasetGeom::synth("a", 10_000, 100_000, 0.25, 128, 7);
        let b = DatasetGeom::synth("b", 10_000, 100_000, 0.25, 128, 7);
        assert_eq!(a.shards, b.shards);
        let c = DatasetGeom::synth("c", 10_000, 100_000, 0.25, 128, 8);
        assert_ne!(a.shards, c.shards);
    }

    #[test]
    fn last_shard_holds_remainder() {
        let g = DatasetGeom::synth("r", 1000, 1000, 0.0, 300, 1);
        assert_eq!(g.num_shards(), 4);
        assert_eq!(g.shards[3].records, 100);
        assert_eq!(g.total_records(), 1000);
    }

    #[test]
    fn zero_jitter_is_exact() {
        let g = DatasetGeom::synth("z", 256, 1000, 0.0, 128, 1);
        for s in &g.shards {
            assert_eq!(s.bytes, s.records * (1000 + FRAME_OVERHEAD));
        }
    }
}
