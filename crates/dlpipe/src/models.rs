//! DL model compute profiles.
//!
//! The paper trains three models on four RTX 5000 GPUs; what the storage
//! study needs from each model is only (a) how long a training step takes
//! once data is available and (b) how much host/accelerator work it
//! represents. We model each as a per-sample compute cost plus utilisation
//! fractions. The constants are calibrated once against the paper's
//! *vanilla* measurements (Fig. 1 and the §II-A resource-usage text) and
//! then held fixed for every MONARCH experiment, so the middleware's
//! relative wins are genuine predictions of the model.

use serde::Serialize;

/// Compute profile of one model.
#[derive(Debug, Clone, Serialize)]
pub struct ModelProfile {
    /// Model name ("lenet", "alexnet", "resnet50").
    pub name: String,
    /// Wall-clock accelerator-pipeline time per sample once data is
    /// buffered, in seconds. An epoch that is never I/O-starved takes
    /// `samples × per_sample_step` seconds.
    pub per_sample_step: f64,
    /// Fraction of step wall time during which the GPUs count as busy
    /// (drives the reported GPU utilisation).
    pub gpu_fraction: f64,
    /// Host CPU work per sample (decode, augmentation), in CPU-seconds;
    /// it overlaps I/O and compute and drives reported CPU utilisation.
    pub cpu_per_sample: f64,
    /// Samples per training step (global batch across the 4 GPUs).
    pub batch_size: u64,
}

impl ModelProfile {
    /// LeNet: tiny network, strongly I/O-bound.
    ///
    /// Calibration (100 GiB / 900k samples): compute floor ≈ 0.133 ms ×
    /// 900k ≈ 120 s per epoch, far below even the local-SSD epoch time
    /// (217 s), so every setup is I/O-bound — as in the paper. GPU work
    /// ≈ 120 s × 0.70 ≈ 85 s/epoch → 39% utilisation at 217 s (paper: 39%)
    /// and 21% at 402 s (paper: 22%). CPU work ≈ 137 µs × 900k ≈ 123 s →
    /// 57% at 217 s (paper 57%), 31% at 402 s (paper 30%).
    #[must_use]
    pub fn lenet() -> Self {
        Self {
            name: "lenet".into(),
            per_sample_step: 133e-6,
            gpu_fraction: 0.70,
            cpu_per_sample: 137e-6,
            batch_size: 512,
        }
    }

    /// AlexNet: moderately I/O-bound.
    ///
    /// Calibration: compute floor ≈ 0.361 ms × 900k ≈ 325 s per epoch —
    /// exactly the vanilla-local epoch time (976 s / 3), making AlexNet
    /// compute-bound on fast storage but I/O-bound on Lustre (398 s),
    /// as observed. GPU work ≈ 325 × 0.72 ≈ 234 s → 72% local (paper 72%),
    /// 59% on Lustre (paper 58%). CPU ≈ 152 µs × 900k ≈ 137 s → 42% local
    /// (paper 42%), 34% on Lustre (paper 31%).
    #[must_use]
    pub fn alexnet() -> Self {
        Self {
            name: "alexnet".into(),
            per_sample_step: 361e-6,
            gpu_fraction: 0.72,
            cpu_per_sample: 152e-6,
            batch_size: 512,
        }
    }

    /// ResNet-50: compute-bound; storage choice is irrelevant (Fig. 1/3/4
    /// show flat epoch times).
    ///
    /// Calibration: compute floor ≈ 0.556 ms × 900k ≈ 500 s per epoch,
    /// above the slowest storage path, so all setups coincide. GPU 90%,
    /// CPU 10% (paper: ~90% / ~10%).
    #[must_use]
    pub fn resnet50() -> Self {
        Self {
            name: "resnet50".into(),
            per_sample_step: 556e-6,
            gpu_fraction: 0.90,
            cpu_per_sample: 56e-6,
            batch_size: 256,
        }
    }

    /// The paper's three models in evaluation order.
    #[must_use]
    pub fn paper_models() -> Vec<ModelProfile> {
        vec![Self::lenet(), Self::alexnet(), Self::resnet50()]
    }

    /// Look a profile up by name (harness CLI).
    #[must_use]
    pub fn by_name(name: &str) -> Option<ModelProfile> {
        match name {
            "lenet" => Some(Self::lenet()),
            "alexnet" => Some(Self::alexnet()),
            "resnet50" | "resnet" => Some(Self::resnet50()),
            _ => None,
        }
    }

    /// Wall time of one full training step.
    #[must_use]
    pub fn step_time(&self) -> f64 {
        self.per_sample_step * self.batch_size as f64
    }

    /// Compute floor for an epoch of `samples` samples (seconds).
    #[must_use]
    pub fn epoch_compute_floor(&self, samples: u64) -> f64 {
        self.per_sample_step * samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        assert_eq!(ModelProfile::by_name("lenet").unwrap().name, "lenet");
        assert_eq!(ModelProfile::by_name("resnet").unwrap().name, "resnet50");
        assert!(ModelProfile::by_name("vgg").is_none());
    }

    #[test]
    fn calibration_targets_hold() {
        // These are the §II-A anchors the profiles were calibrated to.
        let samples = 900_000u64;
        let lenet = ModelProfile::lenet();
        let floor = lenet.epoch_compute_floor(samples);
        assert!(
            floor < 217.0,
            "LeNet must be I/O-bound even on local: {floor}"
        );
        let gpu_work = floor * lenet.gpu_fraction;
        let util_local = gpu_work / 217.0;
        assert!(
            (0.34..0.44).contains(&util_local),
            "LeNet local GPU {util_local}"
        );

        let alex = ModelProfile::alexnet();
        let floor = alex.epoch_compute_floor(samples);
        assert!((300.0..350.0).contains(&floor), "AlexNet floor {floor}");
        let util_local = floor * alex.gpu_fraction / floor; // compute-bound
        assert!((0.65..0.80).contains(&util_local));

        let resnet = ModelProfile::resnet50();
        let floor = resnet.epoch_compute_floor(samples);
        assert!(floor > 420.0, "ResNet must dominate all I/O paths: {floor}");
    }

    #[test]
    fn ordering_of_compute_intensity() {
        let models = ModelProfile::paper_models();
        assert!(models[0].per_sample_step < models[1].per_sample_step);
        assert!(models[1].per_sample_step < models[2].per_sample_step);
    }

    #[test]
    fn step_time_consistency() {
        let m = ModelProfile::lenet();
        let eps = 1e-12;
        assert!((m.step_time() - m.per_sample_step * m.batch_size as f64).abs() < eps);
    }
}
