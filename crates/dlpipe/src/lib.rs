//! # dlpipe — the deep-learning input pipeline and training drivers
//!
//! Reimplements the TensorFlow data-loading machinery the MONARCH paper
//! relies on (parallel interleaved shard readers issuing ~256 KiB chunk
//! reads, a bounded prefetch buffer, shuffling, the `Dataset.cache()`
//! baseline), plus the DL model compute profiles, and drives them in two
//! ways:
//!
//! - [`sim`] — a discrete-event trainer over `simfs` devices that runs the
//!   paper's experiments at full scale (900k–3M samples) in seconds of
//!   wall time; MONARCH's *decision* components (metadata container,
//!   quotas, placement policies) are the real `monarch-core` code.
//! - [`real`] — a thread-based trainer over real directories and the real
//!   [`monarch_core::Monarch`] middleware, used by the integration tests
//!   and examples to validate end-to-end correctness at miniature scale.
//!
//! The experimental *setups* of the paper are enumerated in [`config::Setup`]:
//! `vanilla-lustre`, `vanilla-local`, `vanilla-caching`, and `monarch`.

pub mod config;
pub mod geometry;
pub mod models;
pub mod real;
pub mod report;
pub mod sim;

pub use config::{EnvConfig, PipelineConfig, Setup};
pub use geometry::{DatasetGeom, ShardGeom};
pub use models::ModelProfile;
pub use report::{EpochReport, RunReport};
pub use sim::SimTrainer;
