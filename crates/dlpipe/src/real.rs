//! Real-mode training driver: the same pipeline shape as the simulator,
//! but with actual threads reading actual bytes from actual directories —
//! through the real [`monarch_core::Monarch`] middleware when the setup
//! asks for it.
//!
//! This path exists for *correctness*, not performance claims: the
//! integration tests use it to check that a concurrent tf.data-style
//! workload through MONARCH delivers byte-identical data, places files
//! within quota, and converges to local serving — at miniature scale.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crossbeam::channel;
use monarch_core::driver::{PosixDriver, StorageDriver};
use monarch_core::telemetry::{ThroughputSampler, TimeSeries};
use monarch_core::Monarch;
use simfs::rng::SimRng;

use crate::config::PipelineConfig;

/// How chunks are served in real mode.
pub enum RealBackend {
    /// Read straight from a directory (the vanilla setups).
    Direct(PosixDriver),
    /// Read through the MONARCH middleware.
    Monarch(Arc<Monarch>),
}

impl RealBackend {
    fn read(&self, file: &str, offset: u64, buf: &mut [u8]) -> monarch_core::Result<usize> {
        match self {
            RealBackend::Direct(d) => d.read_at(file, offset, buf),
            RealBackend::Monarch(m) => m.read(file, offset, buf),
        }
    }

    fn file_size(&self, file: &str) -> monarch_core::Result<u64> {
        match self {
            RealBackend::Direct(d) => d.file_size(file),
            RealBackend::Monarch(m) => m.file_size(file),
        }
    }
}

/// Result of one real-mode epoch.
#[derive(Debug, Clone)]
pub struct RealEpoch {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Chunk reads issued.
    pub chunk_reads: u64,
    /// Payload bytes delivered to the trainer.
    pub bytes: u64,
    /// XOR-fold of all delivered bytes — cheap content fingerprint; equal
    /// across setups ⇔ the pipeline delivered the same data.
    pub fingerprint: u64,
    /// Wall-clock read-throughput samples `(seconds, bytes/s)` — the same
    /// [`TimeSeries`] schema the simulator emits; empty unless
    /// `PipelineConfig::trace_interval_secs` is set.
    pub throughput: TimeSeries,
}

/// Real-mode trainer over a sharded dataset directory.
pub struct RealTrainer {
    backend: Arc<RealBackend>,
    shards: Vec<String>,
    pipeline: PipelineConfig,
}

impl RealTrainer {
    /// Train from the shard files found under `dataset_dir` (their
    /// *logical* names are paths relative to that directory).
    pub fn new(
        backend: RealBackend,
        dataset_dir: &Path,
        pipeline: PipelineConfig,
    ) -> std::io::Result<Self> {
        let mut shards: Vec<String> = std::fs::read_dir(dataset_dir)?
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_file())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        shards.sort();
        Ok(Self {
            backend: Arc::new(backend),
            shards,
            pipeline,
        })
    }

    /// Shard names the trainer will stream.
    #[must_use]
    pub fn shards(&self) -> &[String] {
        &self.shards
    }

    /// The exact shard order [`RealTrainer::run_epoch`] will stream for
    /// `epoch` — the shuffle is seeded, so a caller can compute the order
    /// beforehand and hand it to [`Monarch::submit_plan`] as a clairvoyant
    /// access plan.
    #[must_use]
    pub fn epoch_order(&self, epoch: usize) -> Vec<String> {
        let mut order = self.shards.clone();
        let mut rng = SimRng::new(self.pipeline.seed ^ (epoch as u64).wrapping_mul(0x9e37));
        rng.shuffle(&mut order);
        order
    }

    /// Run one epoch: shuffle shards, stream them with N reader threads in
    /// `chunk_bytes` reads, fold every delivered byte into the
    /// fingerprint.
    pub fn run_epoch(&self, epoch: usize) -> monarch_core::Result<RealEpoch> {
        let start = Instant::now();
        let order = self.epoch_order(epoch);

        let reads = Arc::new(AtomicU64::new(0));
        let bytes = Arc::new(AtomicU64::new(0));
        let fp = Arc::new(AtomicU64::new(0));
        let sampler = self
            .pipeline
            .trace_interval_secs
            .map(|iv| Mutex::new(ThroughputSampler::new(iv)));
        let (tx, rx) = channel::unbounded::<String>();
        for shard in order {
            tx.send(shard).expect("queue open");
        }
        drop(tx);

        std::thread::scope(|scope| -> monarch_core::Result<()> {
            let mut handles = Vec::new();
            for _ in 0..self.pipeline.readers.max(1) {
                let rx = rx.clone();
                let backend = Arc::clone(&self.backend);
                let reads = Arc::clone(&reads);
                let bytes = Arc::clone(&bytes);
                let fp = Arc::clone(&fp);
                let sampler = sampler.as_ref();
                let chunk = self.pipeline.chunk_bytes as usize;
                handles.push(scope.spawn(move || -> monarch_core::Result<()> {
                    let mut buf = vec![0u8; chunk];
                    while let Ok(shard) = rx.recv() {
                        let size = backend.file_size(&shard)?;
                        let mut offset = 0u64;
                        while offset < size {
                            let n = backend.read(&shard, offset, &mut buf)?;
                            if n == 0 {
                                break;
                            }
                            reads.fetch_add(1, Ordering::Relaxed);
                            let cum = bytes.fetch_add(n as u64, Ordering::Relaxed) + n as u64;
                            if let Some(s) = sampler {
                                s.lock()
                                    .expect("sampler lock")
                                    .observe(start.elapsed().as_secs_f64(), cum);
                            }
                            // Order-independent fingerprint: XOR of
                            // byte-value × position-in-file hashes.
                            let mut acc = 0u64;
                            for (i, &b) in buf[..n].iter().enumerate() {
                                let pos = offset + i as u64;
                                acc ^= (u64::from(b).wrapping_add(1))
                                    .wrapping_mul(pos.wrapping_add(0x9e37_79b9_7f4a_7c15));
                            }
                            fp.fetch_xor(acc, Ordering::Relaxed);
                            offset += n as u64;
                        }
                    }
                    Ok(())
                }));
            }
            for h in handles {
                h.join().expect("reader thread")?;
            }
            Ok(())
        })?;

        Ok(RealEpoch {
            seconds: start.elapsed().as_secs_f64(),
            chunk_reads: reads.load(Ordering::Relaxed),
            bytes: bytes.load(Ordering::Relaxed),
            fingerprint: fp.load(Ordering::Relaxed),
            throughput: sampler
                .map(|m| m.into_inner().expect("sampler lock").into_series())
                .unwrap_or_default(),
        })
    }

    /// Run `epochs` epochs back-to-back.
    pub fn run(&self, epochs: usize) -> monarch_core::Result<Vec<RealEpoch>> {
        (0..epochs).map(|e| self.run_epoch(e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monarch_core::config::{MonarchConfig, TierConfig};
    use std::fs;
    use std::path::PathBuf;
    use tfrecord::synth::{generate, DatasetSpec};

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dlpipe-real-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn make_dataset(dir: &Path) -> u64 {
        let spec = DatasetSpec::miniature(512 << 10, 64, 99);
        generate(&spec, dir).unwrap().total_bytes
    }

    #[test]
    fn direct_trainer_reads_everything() {
        let root = tmp("direct");
        let data = root.join("data");
        let total = make_dataset(&data);
        let backend = RealBackend::Direct(PosixDriver::new("pfs", &data).unwrap());
        let t = RealTrainer::new(
            backend,
            &data,
            PipelineConfig {
                readers: 4,
                chunk_bytes: 8 << 10,
                prefetch_batches: 2,
                seed: 1,
                trace_interval_secs: Some(0.0),
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        let e = t.run_epoch(0).unwrap();
        assert_eq!(e.bytes, total);
        assert!(e.chunk_reads > 0);
        // Interval 0 samples on every elapsed-time advance: the trace must
        // be non-empty, time-ordered, and end near the total volume.
        assert!(!e.throughput.is_empty(), "tracing enabled but no samples");
        for w in e.throughput.windows(2) {
            assert!(w[1].0 > w[0].0, "trace times must increase");
        }
        assert!(e.throughput.max_value() > 0.0);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn epoch_order_predicts_the_shuffle() {
        let root = tmp("order");
        let data = root.join("data");
        make_dataset(&data);
        let backend = RealBackend::Direct(PosixDriver::new("pfs", &data).unwrap());
        let t = RealTrainer::new(
            backend,
            &data,
            PipelineConfig {
                readers: 1,
                chunk_bytes: 8 << 10,
                prefetch_batches: 2,
                seed: 42,
                trace_interval_secs: None,
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        // Deterministic, a permutation of the shard set, and epoch-varying.
        assert_eq!(t.epoch_order(0), t.epoch_order(0));
        let mut sorted = t.epoch_order(3);
        sorted.sort();
        assert_eq!(sorted, t.shards());
        assert_ne!(t.epoch_order(0), t.epoch_order(1), "epochs share a shuffle");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn monarch_trainer_matches_direct_fingerprint() {
        let root = tmp("monarch");
        let data = root.join("data");
        let cache = root.join("cache");
        let total = make_dataset(&data);

        let pipeline = PipelineConfig {
            readers: 4,
            chunk_bytes: 8 << 10,
            prefetch_batches: 2,
            seed: 1,
            trace_interval_secs: None,
            ..PipelineConfig::default()
        };
        let direct = RealTrainer::new(
            RealBackend::Direct(PosixDriver::new("pfs", &data).unwrap()),
            &data,
            pipeline.clone(),
        )
        .unwrap();
        let want = direct.run_epoch(0).unwrap();

        let cfg = MonarchConfig::builder()
            .tier(
                TierConfig::posix("ssd", cache.to_string_lossy().to_string()).with_capacity(total),
            )
            .tier(TierConfig::posix("pfs", data.to_string_lossy().to_string()))
            .pool_threads(3)
            .build();
        let monarch = Arc::new(Monarch::new(cfg).unwrap());
        monarch.init().unwrap();
        let t =
            RealTrainer::new(RealBackend::Monarch(Arc::clone(&monarch)), &data, pipeline).unwrap();

        // Epoch 1: bytes identical even while placement races underneath.
        let e1 = t.run_epoch(0).unwrap();
        assert_eq!(e1.bytes, want.bytes);
        assert_eq!(e1.fingerprint, want.fingerprint, "epoch-1 content mismatch");

        monarch.wait_placement_idle();
        let placed = monarch.stats();
        assert!(placed.copies_completed > 0, "nothing was placed");

        // Epoch 2: served from the local tier, still identical bytes.
        let e2 = t.run_epoch(1).unwrap();
        assert_eq!(e2.fingerprint, want.fingerprint, "epoch-2 content mismatch");
        let stats = monarch.stats();
        let local_delta = stats.tiers[0].reads - placed.tiers[0].reads;
        let pfs_delta = stats.tiers[1].reads - placed.tiers[1].reads;
        assert!(
            local_delta > 0,
            "epoch 2 never hit the local tier: {stats:?}"
        );
        assert_eq!(pfs_delta, 0, "epoch 2 should not touch the PFS: {stats:?}");
        fs::remove_dir_all(&root).unwrap();
    }
}
