//! Library behind the `monarch` CLI binary (kept as a lib so the argument
//! parser and command implementations are unit-testable).

use std::path::PathBuf;

use dlpipe::config::PipelineConfig;
use dlpipe::real::{RealBackend, RealTrainer};
use monarch_core::config::PolicyKind;
use monarch_core::{Monarch, MonarchConfig};
use tfrecord::synth::{generate, DatasetSpec};

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a synthetic TFRecord dataset.
    GenDataset {
        /// Output directory.
        dir: PathBuf,
        /// Approximate total payload bytes.
        bytes: u64,
        /// Number of samples.
        samples: u64,
        /// RNG seed.
        seed: u64,
    },
    /// Initialise the middleware and pre-stage the dataset.
    Stage {
        /// Path to a `MonarchConfig` JSON file.
        config: PathBuf,
        /// Placement policy override.
        policy: Option<PolicyKind>,
    },
    /// Initialise the middleware and print the composed policy engine:
    /// the admission/eviction/scorer triple and its decision counters.
    Policy {
        /// Path to a `MonarchConfig` JSON file.
        config: PathBuf,
        /// Policy override (same spellings as `stage --policy`).
        policy: Option<PolicyKind>,
        /// Emit the snapshot as JSON instead of the human table.
        json: bool,
    },
    /// Initialise the middleware and print the namespace summary.
    Inspect {
        /// Path to a `MonarchConfig` JSON file.
        config: PathBuf,
    },
    /// Stream the dataset through the middleware for N epochs
    /// (subcommand `epoch`, alias `run`).
    Epoch {
        /// Path to a `MonarchConfig` JSON file.
        config: PathBuf,
        /// Dataset directory (logical namespace root — the PFS tier).
        data: PathBuf,
        /// Parallel readers.
        readers: usize,
        /// Chunk size per read, bytes.
        chunk: u64,
        /// Number of epochs.
        epochs: usize,
        /// Clairvoyant prefetch lookahead override: submit each epoch's
        /// shard order as an access plan and stage that many files ahead
        /// of the read cursor (`0` = use the config file's setting).
        prefetch: usize,
    },
    /// Render the telemetry registry (same registry the FFI exposes via
    /// `monarch_metrics_text`).
    Metrics {
        /// Path to a `MonarchConfig` JSON file.
        config: PathBuf,
        /// Output format.
        format: MetricsFormat,
        /// Re-render every N seconds until interrupted.
        watch: Option<f64>,
    },
    /// Initialise the middleware and expose the observability endpoints
    /// (`/metrics`, `/snapshot`, `/trace`, `/healthz`) over HTTP.
    Serve {
        /// Path to a `MonarchConfig` JSON file.
        config: PathBuf,
        /// Bind address (port `0` picks a free port; the bound address is
        /// printed). Ignored when the config's `metrics_addr` already
        /// started an exporter.
        addr: String,
        /// Shut down after this many seconds (`None` = until killed).
        duration: Option<f64>,
    },
    /// Stream the dataset through the middleware with the access profiler
    /// on and print the epoch bottleneck-attribution report.
    Report {
        /// Path to a `MonarchConfig` JSON file.
        config: PathBuf,
        /// Chunk size per read, bytes.
        chunk: u64,
        /// Number of epochs.
        epochs: usize,
        /// Clairvoyant prefetch lookahead (`0` = use the config file's
        /// setting; the report is most useful with prefetch on).
        prefetch: usize,
        /// Top-K entries in the hot and wasted-prefetch lists.
        top: usize,
        /// Emit the report as JSON instead of the human table.
        json: bool,
    },
    /// Initialise the middleware in cluster mode and print the node
    /// roster plus shard statistics for the scanned namespace.
    Cluster {
        /// Path to a `MonarchConfig` JSON file (must carry a `cluster`
        /// section).
        config: PathBuf,
        /// Emit the snapshot as JSON instead of the human table.
        json: bool,
    },
    /// Initialise the middleware and print the per-tier health table
    /// (state machine, error rates, quarantine/probe counters).
    Health {
        /// Path to a `MonarchConfig` JSON file.
        config: PathBuf,
        /// Emit the snapshot as JSON instead of the human table.
        json: bool,
    },
    /// Stream the dataset through the middleware with causal tracing on
    /// and write a Chrome Trace Event / Perfetto JSON file.
    Trace {
        /// Path to a `MonarchConfig` JSON file.
        config: PathBuf,
        /// Dataset directory (logical namespace root — the PFS tier).
        data: PathBuf,
        /// Output path for the trace JSON.
        out: PathBuf,
        /// Parallel readers.
        readers: usize,
        /// Chunk size per read, bytes.
        chunk: u64,
        /// Keep running whole epochs until this many seconds elapsed
        /// (`None` = exactly one epoch).
        duration: Option<f64>,
        /// Trace every N-th read (1 = every read).
        sample: u64,
    },
}

/// Output format for `monarch metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Prometheus-style exposition text.
    Text,
    /// Pretty-printed `TelemetrySnapshot` JSON.
    Json,
}

impl Command {
    /// Usage text.
    #[must_use]
    pub fn usage() -> &'static str {
        "usage:\n  \
         monarch gen-dataset --dir DIR --bytes N --samples N [--seed N]\n  \
         monarch stage       --config CFG.json [--policy KIND]\n  \
         monarch policy      --config CFG.json [--policy KIND] [--json]\n  \
         \x20                (KIND: first_fit|round_robin|lru_evict|lfu|cost_aware|clairvoyant|learned)\n  \
         monarch inspect     --config CFG.json\n  \
         monarch epoch|run   --config CFG.json --data DIR [--readers N] [--chunk BYTES] [--epochs N] [--prefetch N]\n  \
         monarch metrics     --config CFG.json [--format text|json] [--watch SECS]\n  \
         monarch serve       --config CFG.json [--addr HOST:PORT] [--duration SECS]\n  \
         monarch report      --config CFG.json [--chunk BYTES] [--epochs N] [--prefetch N] [--top K] [--json]\n  \
         monarch cluster     --config CFG.json [--json]\n  \
         monarch health      --config CFG.json [--json]\n  \
         monarch trace       --config CFG.json --data DIR --out TRACE.json [--readers N] [--chunk BYTES] [--duration SECS] [--sample N]"
    }

    /// Parse an argument vector (without the program name).
    pub fn parse(args: &[String]) -> Result<Command, String> {
        // Flags that take no value (presence alone means "true").
        const SWITCHES: &[&str] = &["json"];
        let mut it = args.iter();
        let sub = it.next().ok_or("missing subcommand")?;
        let mut flags = std::collections::BTreeMap::new();
        let mut key: Option<String> = None;
        for a in it {
            if let Some(stripped) = a.strip_prefix("--") {
                if let Some(k) = key.take() {
                    if SWITCHES.contains(&k.as_str()) {
                        flags.insert(k, "true".to_string());
                    } else {
                        return Err(format!("flag --{k} is missing a value"));
                    }
                }
                key = Some(stripped.to_string());
            } else if let Some(k) = key.take() {
                flags.insert(k, a.clone());
            } else {
                return Err(format!("unexpected argument: {a}"));
            }
        }
        if let Some(k) = key {
            if SWITCHES.contains(&k.as_str()) {
                flags.insert(k, "true".to_string());
            } else {
                return Err(format!("flag --{k} is missing a value"));
            }
        }
        let get = |k: &str| -> Result<String, String> {
            flags
                .get(k)
                .cloned()
                .ok_or_else(|| format!("missing --{k}"))
        };
        let get_u64 = |k: &str, default: Option<u64>| -> Result<u64, String> {
            match flags.get(k) {
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("--{k} wants a number, got {v}")),
                None => default.ok_or_else(|| format!("missing --{k}")),
            }
        };
        match sub.as_str() {
            "gen-dataset" => Ok(Command::GenDataset {
                dir: PathBuf::from(get("dir")?),
                bytes: get_u64("bytes", None)?,
                samples: get_u64("samples", None)?,
                seed: get_u64("seed", Some(1))?,
            }),
            "stage" => Ok(Command::Stage {
                config: PathBuf::from(get("config")?),
                policy: parse_policy_flag(&flags)?,
            }),
            "policy" => Ok(Command::Policy {
                config: PathBuf::from(get("config")?),
                policy: parse_policy_flag(&flags)?,
                json: matches!(flags.get("json").map(String::as_str), Some("true")),
            }),
            "inspect" => Ok(Command::Inspect {
                config: PathBuf::from(get("config")?),
            }),
            "epoch" | "run" => Ok(Command::Epoch {
                config: PathBuf::from(get("config")?),
                data: PathBuf::from(get("data")?),
                readers: get_u64("readers", Some(8))? as usize,
                chunk: get_u64("chunk", Some(256 << 10))?,
                epochs: get_u64("epochs", Some(3))? as usize,
                prefetch: get_u64("prefetch", Some(0))? as usize,
            }),
            "metrics" => Ok(Command::Metrics {
                config: PathBuf::from(get("config")?),
                format: match flags.get("format").map(String::as_str) {
                    None | Some("text") => MetricsFormat::Text,
                    Some("json") => MetricsFormat::Json,
                    Some(other) => return Err(format!("unknown format: {other}")),
                },
                watch: match flags.get("watch") {
                    None => None,
                    Some(v) => match v.parse::<f64>() {
                        Ok(secs) if secs > 0.0 => Some(secs),
                        _ => {
                            return Err(format!(
                                "--watch wants a positive number of seconds, got {v}"
                            ))
                        }
                    },
                },
            }),
            "serve" => Ok(Command::Serve {
                config: PathBuf::from(get("config")?),
                addr: flags
                    .get("addr")
                    .cloned()
                    .unwrap_or_else(|| "127.0.0.1:9464".to_string()),
                duration: match flags.get("duration") {
                    None => None,
                    Some(v) => match v.parse::<f64>() {
                        Ok(secs) if secs > 0.0 => Some(secs),
                        _ => {
                            return Err(format!(
                                "--duration wants a positive number of seconds, got {v}"
                            ))
                        }
                    },
                },
            }),
            "report" => Ok(Command::Report {
                config: PathBuf::from(get("config")?),
                chunk: get_u64("chunk", Some(256 << 10))?,
                epochs: match get_u64("epochs", Some(2))? {
                    0 => return Err("--epochs must be >= 1".into()),
                    n => n as usize,
                },
                prefetch: get_u64("prefetch", Some(16))? as usize,
                top: get_u64("top", Some(5))? as usize,
                json: matches!(flags.get("json").map(String::as_str), Some("true")),
            }),
            "cluster" => Ok(Command::Cluster {
                config: PathBuf::from(get("config")?),
                json: matches!(flags.get("json").map(String::as_str), Some("true")),
            }),
            "health" => Ok(Command::Health {
                config: PathBuf::from(get("config")?),
                json: matches!(flags.get("json").map(String::as_str), Some("true")),
            }),
            "trace" => Ok(Command::Trace {
                config: PathBuf::from(get("config")?),
                data: PathBuf::from(get("data")?),
                out: PathBuf::from(get("out")?),
                readers: get_u64("readers", Some(4))? as usize,
                chunk: get_u64("chunk", Some(256 << 10))?,
                duration: match flags.get("duration") {
                    None => None,
                    Some(v) => match v.parse::<f64>() {
                        Ok(secs) if secs > 0.0 => Some(secs),
                        _ => {
                            return Err(format!(
                                "--duration wants a positive number of seconds, got {v}"
                            ))
                        }
                    },
                },
                sample: match get_u64("sample", Some(1))? {
                    0 => return Err("--sample must be >= 1 (0 disables tracing)".into()),
                    n => n,
                },
            }),
            other => Err(format!("unknown subcommand: {other}")),
        }
    }
}

/// Resolve an optional `--policy` flag through [`PolicyKind::parse`].
fn parse_policy_flag(
    flags: &std::collections::BTreeMap<String, String>,
) -> Result<Option<PolicyKind>, String> {
    match flags.get("policy") {
        None => Ok(None),
        Some(s) => PolicyKind::parse(s).map(Some).ok_or_else(|| {
            let known = PolicyKind::all().map(PolicyKind::as_str).join("|");
            format!("unknown policy: {s} (known: {known})")
        }),
    }
}

/// Load a `MonarchConfig` from a JSON file, optionally overriding the
/// policy and the prefetch lookahead, and build + init the middleware.
fn load_monarch(
    config: &PathBuf,
    policy: Option<PolicyKind>,
    prefetch: Option<usize>,
) -> Result<Monarch, String> {
    let json =
        std::fs::read_to_string(config).map_err(|e| format!("read {}: {e}", config.display()))?;
    let mut cfg = MonarchConfig::from_json(&json).map_err(|e| format!("parse config: {e}"))?;
    if let Some(p) = policy {
        cfg.policy = p;
    }
    if let Some(n) = prefetch {
        cfg.prefetch_lookahead = n;
    }
    let m = Monarch::new(cfg).map_err(|e| format!("build middleware: {e}"))?;
    let report = m.init().map_err(|e| format!("namespace scan: {e}"))?;
    // Status goes to stderr: commands like `health --json` must keep
    // stdout machine-parseable.
    eprintln!(
        "namespace: {} files, {:.1} MiB, scanned in {:?}",
        report.files,
        report.bytes as f64 / (1 << 20) as f64,
        report.elapsed
    );
    Ok(m)
}

/// Execute a parsed command.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::GenDataset {
            dir,
            bytes,
            samples,
            seed,
        } => {
            let spec = DatasetSpec::miniature(bytes, samples, seed);
            let ds = generate(&spec, &dir).map_err(|e| e.to_string())?;
            println!(
                "wrote {} records / {:.1} MiB across {} shards under {}",
                ds.total_records,
                ds.total_bytes as f64 / (1 << 20) as f64,
                ds.shards.len(),
                dir.display()
            );
            Ok(())
        }
        Command::Stage { config, policy } => {
            let m = load_monarch(&config, policy, None)?;
            let scheduled = m.prestage();
            m.wait_placement_idle();
            let stats = m.stats();
            println!(
                "staged: {scheduled} scheduled, {} completed, {} skipped (no room), {} failed",
                stats.copies_completed, stats.placement_skipped, stats.copies_failed
            );
            let hist = m.metadata().residency_histogram(m.hierarchy().levels());
            println!("residency per tier: {hist:?}");
            Ok(())
        }
        Command::Policy {
            config,
            policy,
            json,
        } => {
            let m = load_monarch(&config, policy, None)?;
            let snap = m.policy_snapshot();
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&snap).map_err(|e| e.to_string())?
                );
            } else {
                println!("policy: {}", snap.name);
                println!("  admission: {}", snap.admission);
                println!(
                    "  eviction:  {} ({})",
                    snap.eviction,
                    if snap.may_evict {
                        "may evict"
                    } else {
                        "never evicts"
                    }
                );
                println!("  scorer:    {}", snap.scorer);
                println!(
                    "  demand admits/denials:   {} / {}",
                    snap.demand_admits, snap.demand_denials
                );
                println!(
                    "  prefetch admits/denials: {} / {}",
                    snap.prefetch_admits, snap.prefetch_denials
                );
                println!(
                    "  evictions selected: {} (+{} under pressure), {} pinned",
                    snap.evictions_selected, snap.pressure_victims, snap.pinned
                );
            }
            Ok(())
        }
        Command::Inspect { config } => {
            let m = load_monarch(&config, None, None)?;
            for tier in m.hierarchy().tiers() {
                match tier.quota.as_ref() {
                    Some(q) => println!(
                        "tier {} ({}): {:.1} / {:.1} MiB used",
                        tier.id,
                        tier.name,
                        q.used() as f64 / (1 << 20) as f64,
                        q.capacity() as f64 / (1 << 20) as f64
                    ),
                    None => println!("tier {} ({}): source (read-only)", tier.id, tier.name),
                }
            }
            println!(
                "stats: {}",
                serde_json::to_string_pretty(&m.stats()).map_err(|e| e.to_string())?
            );
            Ok(())
        }
        Command::Epoch {
            config,
            data,
            readers,
            chunk,
            epochs,
            prefetch,
        } => {
            let m = std::sync::Arc::new(load_monarch(
                &config,
                None,
                (prefetch > 0).then_some(prefetch),
            )?);
            let trainer = RealTrainer::new(
                RealBackend::Monarch(std::sync::Arc::clone(&m)),
                &data,
                PipelineConfig {
                    readers,
                    chunk_bytes: chunk,
                    prefetch_batches: 4,
                    seed: 1,
                    trace_interval_secs: None,
                    ..PipelineConfig::default()
                },
            )
            .map_err(|e| e.to_string())?;
            for epoch in 0..epochs {
                let before = m.stats();
                // The trainer's shuffle is seeded, so the upcoming shard
                // order is known exactly: hand it to the middleware as a
                // clairvoyant access plan (no-op when prefetch is off).
                let plan = monarch_core::AccessPlan::new(trainer.epoch_order(epoch));
                let admitted = m.submit_plan(&plan);
                let e = trainer.run_epoch(epoch).map_err(|e| e.to_string())?;
                m.wait_placement_idle();
                let after = m.stats();
                let local = after.local_reads().saturating_sub(before.local_reads());
                let pfs = after.pfs_reads().saturating_sub(before.pfs_reads());
                print!(
                    "epoch {}: {:.2}s, {} chunk reads ({:.1} MiB) — local {} / pfs {}",
                    epoch + 1,
                    e.seconds,
                    e.chunk_reads,
                    e.bytes as f64 / (1 << 20) as f64,
                    local,
                    pfs
                );
                if admitted > 0 {
                    println!(
                        " — prefetch: {} staged, {} hits, {} promoted",
                        after.prefetches_scheduled - before.prefetches_scheduled,
                        after.prefetch_hits - before.prefetch_hits,
                        after.prefetch_promoted - before.prefetch_promoted
                    );
                } else {
                    println!();
                }
            }
            println!(
                "final stats: {}",
                serde_json::to_string(&m.stats()).map_err(|e| e.to_string())?
            );
            Ok(())
        }
        Command::Metrics {
            config,
            format,
            watch,
        } => {
            let m = load_monarch(&config, None, None)?;
            let render = |m: &Monarch| -> Result<String, String> {
                match format {
                    MetricsFormat::Text => Ok(m.metrics_text()),
                    MetricsFormat::Json => serde_json::to_string_pretty(&m.telemetry_snapshot())
                        .map_err(|e| e.to_string()),
                }
            };
            match watch {
                None => println!("{}", render(&m)?),
                // Both renderers are non-draining (snapshots, not queue
                // pops), so every tick sees the full cumulative state —
                // a watch loop never steals events from another consumer.
                Some(secs) => loop {
                    println!("{}", render(&m)?);
                    std::thread::sleep(std::time::Duration::from_secs_f64(secs));
                },
            }
            Ok(())
        }
        Command::Serve {
            config,
            addr,
            duration,
        } => {
            let m = load_monarch(&config, None, None)?;
            // A `metrics_addr` in the config already started the exporter
            // during build; otherwise bind the --addr flag now.
            let bound = match m.serve_addr() {
                Some(a) => a,
                None => m.serve(&addr).map_err(|e| format!("start exporter: {e}"))?,
            };
            println!("serving /metrics /snapshot /trace /healthz on http://{bound}");
            match duration {
                Some(secs) => {
                    std::thread::sleep(std::time::Duration::from_secs_f64(secs));
                    println!("duration elapsed, shutting down");
                    m.shutdown();
                }
                None => loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                },
            }
            Ok(())
        }
        Command::Report {
            config,
            chunk,
            epochs,
            prefetch,
            top,
            json,
        } => {
            let cfg_json = std::fs::read_to_string(&config)
                .map_err(|e| format!("read {}: {e}", config.display()))?;
            let mut cfg =
                MonarchConfig::from_json(&cfg_json).map_err(|e| format!("parse config: {e}"))?;
            // The subcommand's whole point is the observatory: force
            // telemetry and the access profiler on regardless of the
            // config file, like `trace` forces tracing on.
            cfg.telemetry.enabled = true;
            cfg.telemetry.profiler = true;
            if prefetch > 0 {
                cfg.prefetch_lookahead = prefetch;
            }
            let lookahead = cfg.prefetch_lookahead;
            let m = Monarch::new(cfg).map_err(|e| format!("build middleware: {e}"))?;
            let init = m.init().map_err(|e| format!("namespace scan: {e}"))?;
            if !json {
                println!(
                    "namespace: {} files, {:.1} MiB, scanned in {:?}",
                    init.files,
                    init.bytes as f64 / (1 << 20) as f64,
                    init.elapsed
                );
            }
            let mut files: Vec<(String, u64)> = Vec::new();
            m.metadata()
                .for_each(|name, info| files.push((name.to_string(), info.size)));
            files.sort();
            if files.is_empty() {
                return Err("the source tier holds no files — nothing to profile".into());
            }
            // Hold back a tail of the namespace: those files stay in the
            // plan (so the prefetcher stages the ones within lookahead of
            // the final cursor) but are never read — the report's
            // wasted-prefetch list gets a deterministic population.
            let hold = if files.len() >= 4 && lookahead > 0 {
                (files.len() / 8).clamp(1, lookahead)
            } else {
                0
            };
            let read_set = &files[..files.len() - hold];
            let plan_names: Vec<String> = files.iter().map(|(n, _)| n.clone()).collect();
            let mut buf = vec![0u8; (chunk.max(1)) as usize];
            let t0 = std::time::Instant::now();
            for _ in 0..epochs {
                let plan = monarch_core::AccessPlan::new(plan_names.clone());
                m.submit_plan(&plan);
                for (name, size) in read_set {
                    let mut off = 0u64;
                    while off < *size {
                        let n = m.read(name, off, &mut buf).map_err(|e| e.to_string())?;
                        if n == 0 {
                            break;
                        }
                        off += n as u64;
                    }
                }
            }
            m.wait_placement_idle();
            let wall = t0.elapsed().as_secs_f64();
            let snap = m.telemetry_snapshot();
            let report = monarch_core::ObserveReport::from_snapshot(&snap, wall, 1, top)
                .ok_or("telemetry snapshot carries no observe section")?;
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
                );
            } else {
                print!("{}", report.render_table());
            }
            m.shutdown();
            Ok(())
        }
        Command::Cluster { config, json } => {
            let cfg_json = std::fs::read_to_string(&config)
                .map_err(|e| format!("read {}: {e}", config.display()))?;
            let cfg =
                MonarchConfig::from_json(&cfg_json).map_err(|e| format!("parse config: {e}"))?;
            if cfg.cluster.is_none() {
                return Err("config has no `cluster` section — nothing to report".into());
            }
            let m = Monarch::new(cfg).map_err(|e| format!("build middleware: {e}"))?;
            let init = m.init().map_err(|e| format!("namespace scan: {e}"))?;
            let cluster = m
                .cluster()
                .ok_or("middleware built without a cluster handle")?;
            // Shard statistics over the scanned namespace: how the
            // consistent-hash ring splits this node's file set by count
            // and by bytes.
            let mut nodes = vec![(0u64, 0u64); cluster.config().nodes.len()];
            m.metadata().for_each(|name, info| {
                let owner = cluster.shard_map().owner(name);
                if let Some((files, bytes)) = nodes.get_mut(owner) {
                    *files += 1;
                    *bytes += info.size;
                }
            });
            let snap = m
                .cluster_snapshot()
                .ok_or("cluster handle produced no snapshot")?;
            if json {
                let shard: Vec<serde_json::Value> = nodes
                    .iter()
                    .enumerate()
                    .map(|(id, (files, bytes))| {
                        let mut entry = serde_json::Map::new();
                        entry.insert("node".into(), serde_json::Value::UInt(id as u64));
                        entry.insert("files".into(), serde_json::Value::UInt(*files));
                        entry.insert("bytes".into(), serde_json::Value::UInt(*bytes));
                        serde_json::Value::Object(entry)
                    })
                    .collect();
                let mut out = serde_json::Map::new();
                out.insert(
                    "cluster".into(),
                    serde_json::to_value(&snap).map_err(|e| e.to_string())?,
                );
                out.insert("shard_load".into(), serde_json::Value::Array(shard));
                println!(
                    "{}",
                    serde_json::to_string_pretty(&serde_json::Value::Object(out))
                        .map_err(|e| e.to_string())?
                );
            } else {
                println!(
                    "namespace: {} files, {:.1} MiB, scanned in {:?}",
                    init.files,
                    init.bytes as f64 / (1 << 20) as f64,
                    init.elapsed
                );
                print!("{}", snap.render_table());
                println!("shard assignment over the namespace:");
                for (id, (files, bytes)) in nodes.iter().enumerate() {
                    println!(
                        "   node {id:<3} owns {files:>6} file(s) / {:.1} MiB",
                        *bytes as f64 / (1 << 20) as f64
                    );
                }
            }
            m.shutdown();
            Ok(())
        }
        Command::Health { config, json } => {
            let m = load_monarch(&config, None, None)?;
            let snap = m.hierarchy().health().snapshot();
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&snap).map_err(|e| e.to_string())?
                );
            } else {
                print!("{}", snap.render_table());
            }
            m.shutdown();
            Ok(())
        }
        Command::Trace {
            config,
            data,
            out,
            readers,
            chunk,
            duration,
            sample,
        } => {
            let json = std::fs::read_to_string(&config)
                .map_err(|e| format!("read {}: {e}", config.display()))?;
            let mut cfg =
                MonarchConfig::from_json(&json).map_err(|e| format!("parse config: {e}"))?;
            // The subcommand's whole point is a trace: force telemetry on
            // and apply the sampling rate regardless of what the config
            // file says.
            cfg.telemetry.enabled = true;
            cfg.telemetry.trace_sample_every_n = sample;
            let m = Monarch::new(cfg).map_err(|e| format!("build middleware: {e}"))?;
            m.init().map_err(|e| format!("namespace scan: {e}"))?;
            let m = std::sync::Arc::new(m);
            let trainer = RealTrainer::new(
                RealBackend::Monarch(std::sync::Arc::clone(&m)),
                &data,
                PipelineConfig {
                    readers,
                    chunk_bytes: chunk,
                    prefetch_batches: 4,
                    seed: 1,
                    trace_interval_secs: None,
                    ..PipelineConfig::default()
                },
            )
            .map_err(|e| e.to_string())?;
            let deadline = duration
                .map(|secs| std::time::Instant::now() + std::time::Duration::from_secs_f64(secs));
            let mut epochs = 0usize;
            loop {
                let e = trainer.run_epoch(epochs).map_err(|e| e.to_string())?;
                m.wait_placement_idle();
                epochs += 1;
                println!(
                    "epoch {epochs}: {:.2}s, {} chunk reads",
                    e.seconds, e.chunk_reads
                );
                match deadline {
                    Some(d) if std::time::Instant::now() < d => {}
                    _ => break,
                }
            }
            let trace = m.trace_json();
            std::fs::write(&out, &trace).map_err(|e| format!("write {}: {e}", out.display()))?;
            let tr = m.telemetry().trace();
            println!(
                "trace: {} spans recorded ({} dropped) over {epochs} epoch(s) → {}",
                tr.spans_recorded(),
                tr.spans_dropped(),
                out.display()
            );
            println!("open it in https://ui.perfetto.dev or chrome://tracing");
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Command::parse(&v)
    }

    #[test]
    fn parses_gen_dataset() {
        let cmd = parse(&[
            "gen-dataset",
            "--dir",
            "/tmp/x",
            "--bytes",
            "1048576",
            "--samples",
            "64",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::GenDataset {
                dir: PathBuf::from("/tmp/x"),
                bytes: 1 << 20,
                samples: 64,
                seed: 1
            }
        );
    }

    #[test]
    fn parses_stage_with_policy() {
        let cmd = parse(&["stage", "--config", "c.json", "--policy", "lru_evict"]).unwrap();
        assert_eq!(
            cmd,
            Command::Stage {
                config: PathBuf::from("c.json"),
                policy: Some(PolicyKind::LruEvict)
            }
        );
        // Every selector the core knows parses here too.
        for kind in PolicyKind::all() {
            let cmd = parse(&["stage", "--config", "c.json", "--policy", kind.as_str()]).unwrap();
            assert_eq!(
                cmd,
                Command::Stage {
                    config: PathBuf::from("c.json"),
                    policy: Some(kind)
                }
            );
        }
    }

    #[test]
    fn parses_policy_view() {
        let cmd = parse(&["policy", "--config", "c.json"]).unwrap();
        assert_eq!(
            cmd,
            Command::Policy {
                config: PathBuf::from("c.json"),
                policy: None,
                json: false
            }
        );
        let cmd = parse(&[
            "policy", "--config", "c.json", "--policy", "learned", "--json",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Policy {
                config: PathBuf::from("c.json"),
                policy: Some(PolicyKind::Learned),
                json: true
            }
        );
        assert!(parse(&["policy", "--config", "c", "--policy", "nope"]).is_err());
    }

    #[test]
    fn parses_epoch_defaults() {
        let cmd = parse(&["epoch", "--config", "c.json", "--data", "/d"]).unwrap();
        assert_eq!(
            cmd,
            Command::Epoch {
                config: PathBuf::from("c.json"),
                data: PathBuf::from("/d"),
                readers: 8,
                chunk: 256 << 10,
                epochs: 3,
                prefetch: 0
            }
        );
    }

    #[test]
    fn run_is_an_epoch_alias_with_prefetch() {
        let cmd = parse(&[
            "run",
            "--config",
            "c.json",
            "--data",
            "/d",
            "--prefetch",
            "16",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Epoch {
                config: PathBuf::from("c.json"),
                data: PathBuf::from("/d"),
                readers: 8,
                chunk: 256 << 10,
                epochs: 3,
                prefetch: 16
            }
        );
        assert!(parse(&["run", "--config", "c", "--data", "/d", "--prefetch", "x"]).is_err());
    }

    #[test]
    fn parses_metrics_defaults_and_overrides() {
        let cmd = parse(&["metrics", "--config", "c.json"]).unwrap();
        assert_eq!(
            cmd,
            Command::Metrics {
                config: PathBuf::from("c.json"),
                format: MetricsFormat::Text,
                watch: None
            }
        );
        let cmd = parse(&[
            "metrics", "--config", "c.json", "--format", "json", "--watch", "0.5",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Metrics {
                config: PathBuf::from("c.json"),
                format: MetricsFormat::Json,
                watch: Some(0.5)
            }
        );
    }

    #[test]
    fn parses_serve_defaults_and_overrides() {
        let cmd = parse(&["serve", "--config", "c.json"]).unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                config: PathBuf::from("c.json"),
                addr: "127.0.0.1:9464".to_string(),
                duration: None
            }
        );
        let cmd = parse(&[
            "serve",
            "--config",
            "c.json",
            "--addr",
            "0.0.0.0:0",
            "--duration",
            "1.5",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                config: PathBuf::from("c.json"),
                addr: "0.0.0.0:0".to_string(),
                duration: Some(1.5)
            }
        );
        assert!(parse(&["serve", "--config", "c", "--duration", "0"]).is_err());
        assert!(parse(&["serve", "--config", "c", "--duration", "x"]).is_err());
    }

    #[test]
    fn parses_report_defaults_switch_and_overrides() {
        let cmd = parse(&["report", "--config", "c.json"]).unwrap();
        assert_eq!(
            cmd,
            Command::Report {
                config: PathBuf::from("c.json"),
                chunk: 256 << 10,
                epochs: 2,
                prefetch: 16,
                top: 5,
                json: false
            }
        );
        // `--json` is a switch: valid bare, before another flag, or last.
        let cmd = parse(&["report", "--json", "--config", "c.json", "--top", "3"]).unwrap();
        assert_eq!(
            cmd,
            Command::Report {
                config: PathBuf::from("c.json"),
                chunk: 256 << 10,
                epochs: 2,
                prefetch: 16,
                top: 3,
                json: true
            }
        );
        let cmd = parse(&["report", "--config", "c.json", "--json"]).unwrap();
        assert!(matches!(cmd, Command::Report { json: true, .. }));
        assert!(parse(&["report", "--config", "c", "--epochs", "0"]).is_err());
        assert!(
            parse(&["report", "--json"]).is_err(),
            "still missing --config"
        );
    }

    #[test]
    fn parses_cluster_defaults_and_json_switch() {
        let cmd = parse(&["cluster", "--config", "c.json"]).unwrap();
        assert_eq!(
            cmd,
            Command::Cluster {
                config: PathBuf::from("c.json"),
                json: false
            }
        );
        let cmd = parse(&["cluster", "--config", "c.json", "--json"]).unwrap();
        assert!(matches!(cmd, Command::Cluster { json: true, .. }));
        assert!(parse(&["cluster"]).is_err(), "missing --config");
    }

    #[test]
    fn parses_health_defaults_and_json_switch() {
        let cmd = parse(&["health", "--config", "c.json"]).unwrap();
        assert_eq!(
            cmd,
            Command::Health {
                config: PathBuf::from("c.json"),
                json: false
            }
        );
        let cmd = parse(&["health", "--config", "c.json", "--json"]).unwrap();
        assert!(matches!(cmd, Command::Health { json: true, .. }));
        assert!(parse(&["health"]).is_err(), "missing --config");
    }

    #[test]
    fn parses_trace_defaults_and_overrides() {
        let cmd = parse(&[
            "trace", "--config", "c.json", "--data", "/d", "--out", "t.json",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Trace {
                config: PathBuf::from("c.json"),
                data: PathBuf::from("/d"),
                out: PathBuf::from("t.json"),
                readers: 4,
                chunk: 256 << 10,
                duration: None,
                sample: 1
            }
        );
        let cmd = parse(&[
            "trace",
            "--config",
            "c.json",
            "--data",
            "/d",
            "--out",
            "t.json",
            "--duration",
            "2.5",
            "--sample",
            "8",
            "--readers",
            "2",
            "--chunk",
            "4096",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Trace {
                config: PathBuf::from("c.json"),
                data: PathBuf::from("/d"),
                out: PathBuf::from("t.json"),
                readers: 2,
                chunk: 4096,
                duration: Some(2.5),
                sample: 8
            }
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["bogus"]).is_err());
        assert!(parse(&["stage"]).is_err(), "missing --config");
        assert!(parse(&["stage", "--config"]).is_err(), "dangling flag");
        assert!(parse(&["stage", "--config", "c", "--policy", "nope"]).is_err());
        assert!(parse(&["epoch", "--config", "c", "--data", "/d", "--readers", "x"]).is_err());
        assert!(parse(&["gen-dataset", "stray", "--dir", "x"]).is_err());
        assert!(parse(&["metrics", "--config", "c", "--format", "yaml"]).is_err());
        assert!(parse(&["metrics", "--config", "c", "--watch", "-1"]).is_err());
        assert!(parse(&["metrics", "--config", "c", "--watch", "soon"]).is_err());
        assert!(
            parse(&["trace", "--config", "c", "--data", "/d"]).is_err(),
            "missing --out"
        );
        assert!(
            parse(&["trace", "--config", "c", "--data", "/d", "--out", "t", "--sample", "0"])
                .is_err()
        );
        assert!(parse(&[
            "trace",
            "--config",
            "c",
            "--data",
            "/d",
            "--out",
            "t",
            "--duration",
            "0"
        ])
        .is_err());
    }

    #[test]
    fn end_to_end_gen_stage_epoch() {
        let root = std::env::temp_dir().join(format!("monarch-cli-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let data = root.join("pfs");
        run(Command::GenDataset {
            dir: data.clone(),
            bytes: 512 << 10,
            samples: 32,
            seed: 7,
        })
        .unwrap();

        // Write a config pointing at the generated data.
        let cfg = monarch_core::config::MonarchConfig::builder()
            .tier(
                monarch_core::config::TierConfig::posix(
                    "ssd",
                    root.join("ssd").to_string_lossy().to_string(),
                )
                .with_capacity(1 << 20),
            )
            .tier(monarch_core::config::TierConfig::posix(
                "pfs",
                data.to_string_lossy().to_string(),
            ))
            .pool_threads(2)
            .build();
        let cfg_path = root.join("cfg.json");
        std::fs::write(&cfg_path, cfg.to_json()).unwrap();

        run(Command::Stage {
            config: cfg_path.clone(),
            policy: None,
        })
        .unwrap();
        run(Command::Inspect {
            config: cfg_path.clone(),
        })
        .unwrap();
        run(Command::Epoch {
            config: cfg_path.clone(),
            data: data.clone(),
            readers: 2,
            chunk: 8 << 10,
            epochs: 2,
            prefetch: 0,
        })
        .unwrap();
        // The `run --prefetch` path: plan-driven staging over the same data.
        run(Command::Epoch {
            config: cfg_path.clone(),
            data,
            readers: 2,
            chunk: 8 << 10,
            epochs: 1,
            prefetch: 8,
        })
        .unwrap();
        // One-shot metrics renders in both formats against the same config.
        run(Command::Metrics {
            config: cfg_path.clone(),
            format: MetricsFormat::Text,
            watch: None,
        })
        .unwrap();
        run(Command::Metrics {
            config: cfg_path.clone(),
            format: MetricsFormat::Json,
            watch: None,
        })
        .unwrap();
        // The report subcommand runs its own plan-driven epoch loop and
        // prints the bottleneck-attribution table.
        run(Command::Report {
            config: cfg_path.clone(),
            chunk: 8 << 10,
            epochs: 2,
            prefetch: 8,
            top: 5,
            json: false,
        })
        .unwrap();
        // A cluster-mode config renders the node roster and the shard
        // assignment over the generated namespace.
        let ccfg = monarch_core::config::MonarchConfig::builder()
            .tier(
                monarch_core::config::TierConfig::posix(
                    "ssd",
                    root.join("ssd-cluster").to_string_lossy().to_string(),
                )
                .with_capacity(1 << 20),
            )
            .tier(monarch_core::config::TierConfig::posix(
                "pfs",
                root.join("pfs").to_string_lossy().to_string(),
            ))
            .pool_threads(2)
            .cluster(monarch_core::ClusterConfig::new(
                0,
                vec!["127.0.0.1:0".to_string()],
            ))
            .build();
        let ccfg_path = root.join("cluster-cfg.json");
        std::fs::write(&ccfg_path, ccfg.to_json()).unwrap();
        run(Command::Cluster {
            config: ccfg_path.clone(),
            json: false,
        })
        .unwrap();
        run(Command::Cluster {
            config: ccfg_path,
            json: true,
        })
        .unwrap();
        // A traced run writes a Perfetto-loadable JSON file with flow-linked
        // read and copy spans.
        let trace_path = root.join("trace.json");
        run(Command::Trace {
            config: cfg_path,
            data: root.join("pfs"),
            out: trace_path.clone(),
            readers: 2,
            chunk: 8 << 10,
            duration: None,
            sample: 1,
        })
        .unwrap();
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        let v: serde_json::Value = serde_json::from_str(&trace).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        assert!(events.iter().any(|e| e["name"] == "read"));
        assert!(events.iter().any(|e| e["name"] == "driver_pread"));
        std::fs::remove_dir_all(&root).unwrap();
    }
}
