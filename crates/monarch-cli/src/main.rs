//! `monarch` — command-line front end for the middleware.
//!
//! ```text
//! monarch gen-dataset --dir DIR --bytes N --samples N [--seed N]
//! monarch stage       --config CFG.json [--policy first_fit|lru_evict|round_robin]
//! monarch inspect     --config CFG.json
//! monarch epoch       --config CFG.json --data DIR [--readers N] [--chunk BYTES] [--epochs N]
//! monarch metrics     --config CFG.json [--format text|json] [--watch SECS]
//! monarch trace       --config CFG.json --data DIR --out TRACE.json [--readers N] [--chunk BYTES] [--duration SECS] [--sample N]
//! ```
//!
//! `stage` pre-places the dataset (placement option (i), §III-A);
//! `epoch` streams the dataset through the middleware with the tf.data-like
//! real trainer and prints per-epoch times and tier hit counts;
//! `metrics` renders the telemetry registry (Prometheus-style text or a JSON
//! snapshot — the same registry the C FFI exposes via `monarch_metrics_text`);
//! `trace` runs epochs with causal request tracing on and writes a
//! Chrome Trace Event / Perfetto JSON file (open in `ui.perfetto.dev`)
//! whose flow arrows link each sampled foreground read to the background
//! copy it scheduled.

use monarch_cli::{run, Command};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match Command::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", Command::usage());
            std::process::exit(2);
        }
    };
    if let Err(e) = run(cmd) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
