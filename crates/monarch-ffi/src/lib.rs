//! # monarch-ffi — the C ABI a DL framework integrates against
//!
//! The paper integrates MONARCH into TensorFlow by changing six lines:
//! instantiate the middleware, register the driver, and replace the POSIX
//! `pread` with `Monarch.read` (which takes a *filename* instead of a file
//! descriptor). This crate exposes exactly that surface as a `cdylib`, so
//! a framework's POSIX file-system driver can do the same against the Rust
//! implementation:
//!
//! ```c
//! monarch_t *m = monarch_init_json(config_json);        // 1
//! /* ... in the storage driver's PRead():               */
//! long n = monarch_read(m, filename, offset, buf, len); // 2 (was pread)
//! /* ... at teardown:                                   */
//! monarch_shutdown(m);                                  // 3
//! ```
//!
//! All functions are panic-safe (panics are caught and converted to error
//! codes) and thread-safe (the middleware is internally synchronised).

use std::ffi::{c_char, c_int, c_long, CStr, CString};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::ptr;

use monarch_core::{Monarch, MonarchConfig};

/// Opaque middleware handle exposed to C.
pub struct MonarchHandle {
    inner: Monarch,
}

/// Error codes returned by the C API.
pub mod errcode {
    /// Operation succeeded.
    pub const OK: i64 = 0;
    /// A pointer argument was null or a string was not valid UTF-8.
    pub const EINVAL: i64 = -1;
    /// The configuration could not be parsed or applied.
    pub const ECONFIG: i64 = -2;
    /// The file is not present in the namespace.
    pub const ENOENT: i64 = -3;
    /// An I/O error occurred in a storage backend.
    pub const EIO: i64 = -4;
    /// An internal panic was caught.
    pub const EPANIC: i64 = -5;
}

fn to_str<'a>(ptr: *const c_char) -> Option<&'a str> {
    if ptr.is_null() {
        return None;
    }
    // SAFETY: caller passes a NUL-terminated string (C API contract).
    unsafe { CStr::from_ptr(ptr) }.to_str().ok()
}

/// Create a middleware instance from a JSON configuration string (see
/// [`monarch_core::config::MonarchConfig`] for the schema) and scan the
/// PFS tier to populate the namespace. Returns null on failure.
///
/// # Safety
/// `config_json` must be a valid NUL-terminated C string or null.
#[no_mangle]
pub unsafe extern "C" fn monarch_init_json(config_json: *const c_char) -> *mut MonarchHandle {
    let result = catch_unwind(|| {
        let json = to_str(config_json)?;
        let cfg = MonarchConfig::from_json(json).ok()?;
        let inner = Monarch::new(cfg).ok()?;
        inner.init().ok()?;
        Some(Box::new(MonarchHandle { inner }))
    });
    match result {
        Ok(Some(handle)) => Box::into_raw(handle),
        _ => ptr::null_mut(),
    }
}

/// Apply one `key = value` override to a JSON configuration string and
/// return the updated JSON (release it with [`monarch_string_free`]).
/// Chain calls to build up a config without a JSON library on the C side,
/// then hand the result to [`monarch_init_json`]. Supported keys:
///
/// | key                         | value                                    |
/// |-----------------------------|------------------------------------------|
/// | `cluster.node_id`           | this node's index into the peer list     |
/// | `cluster.nodes`             | comma-separated `host:port` peer list    |
/// | `cluster.shard_seed`        | consistent-hash seed all nodes agree on  |
/// | `cluster.peer_timeout_ms`   | per-request peer I/O timeout             |
/// | `cluster.remote_deadline_ms`| queued remote-install deadline           |
/// | `cluster.serve`             | `1`/`true` or `0`/`false`                |
/// | `policy.kind`               | `first_fit`, `round_robin`, `lru_evict`, |
/// |                             | `lfu`, `cost_aware`, `clairvoyant`,      |
/// |                             | `learned`                                |
/// | `policy.admission`          | `admit_all`, `reuse_aware`, or           |
/// |                             | `size_threshold:<bytes>`                 |
///
/// Returns null when the config does not parse, the key is unknown, or
/// the value does not parse for that key. Validation of the assembled
/// cluster section (node id in range, non-empty roster) happens at init.
///
/// # Safety
/// All three arguments must be valid NUL-terminated C strings or null.
#[no_mangle]
pub unsafe extern "C" fn monarch_configure(
    config_json: *const c_char,
    key: *const c_char,
    value: *const c_char,
) -> *mut c_char {
    let outcome = catch_unwind(|| {
        let json = to_str(config_json)?;
        let key = to_str(key)?;
        let value = to_str(value)?;
        let mut cfg = MonarchConfig::from_json(json).ok()?;
        apply_config_key(&mut cfg, key, value)?;
        Some(cfg.to_json())
    });
    match outcome {
        Ok(Some(json)) => match CString::new(json) {
            Ok(c) => c.into_raw(),
            Err(_) => ptr::null_mut(),
        },
        _ => ptr::null_mut(),
    }
}

/// [`monarch_configure`]'s key dispatch, separated for unit testing.
fn apply_config_key(cfg: &mut MonarchConfig, key: &str, value: &str) -> Option<()> {
    // Policy keys must not materialise a cluster section as a side
    // effect, so they dispatch before the cluster get-or-insert.
    match key {
        "policy.kind" => {
            cfg.policy = monarch_core::config::PolicyKind::parse(value)?;
            return Some(());
        }
        "policy.admission" => {
            cfg.admission = monarch_core::config::AdmissionKind::parse(value)?;
            return Some(());
        }
        _ => {}
    }
    let cluster = cfg
        .cluster
        .get_or_insert_with(|| monarch_core::ClusterConfig::new(0, Vec::new()));
    match key {
        "cluster.node_id" => cluster.node_id = value.parse().ok()?,
        "cluster.nodes" => {
            cluster.nodes = value
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
        }
        "cluster.shard_seed" => cluster.shard_seed = value.parse().ok()?,
        "cluster.peer_timeout_ms" => cluster.peer_timeout_ms = value.parse().ok()?,
        "cluster.remote_deadline_ms" => cluster.remote_deadline_ms = value.parse().ok()?,
        "cluster.serve" => {
            cluster.serve = match value {
                "1" | "true" => true,
                "0" | "false" => false,
                _ => return None,
            }
        }
        _ => return None,
    }
    Some(())
}

/// The `Monarch.read` operation: read up to `len` bytes of `filename`
/// starting at `offset` into `buf`. Returns the byte count (0 at EOF) or a
/// negative [`errcode`].
///
/// # Safety
/// `handle` must come from [`monarch_init_json`] and not be freed;
/// `filename` must be NUL-terminated; `buf` must point to `len` writable
/// bytes.
#[no_mangle]
pub unsafe extern "C" fn monarch_read(
    handle: *mut MonarchHandle,
    filename: *const c_char,
    offset: u64,
    buf: *mut u8,
    len: usize,
) -> c_long {
    if handle.is_null() || buf.is_null() {
        return errcode::EINVAL as c_long;
    }
    let Some(name) = to_str(filename) else {
        return errcode::EINVAL as c_long;
    };
    // SAFETY: caller guarantees buf/len per the contract above.
    let slice = unsafe { std::slice::from_raw_parts_mut(buf, len) };
    let monarch = unsafe { &(*handle).inner };
    let outcome = catch_unwind(AssertUnwindSafe(|| monarch.read(name, offset, slice)));
    match outcome {
        Ok(Ok(n)) => n as c_long,
        Ok(Err(monarch_core::Error::UnknownFile(_))) => errcode::ENOENT as c_long,
        Ok(Err(_)) => errcode::EIO as c_long,
        Err(_) => errcode::EPANIC as c_long,
    }
}

/// Size of `filename` per the namespace, or a negative [`errcode`].
///
/// # Safety
/// Same contract as [`monarch_read`] for `handle` and `filename`.
#[no_mangle]
pub unsafe extern "C" fn monarch_file_size(
    handle: *mut MonarchHandle,
    filename: *const c_char,
) -> c_long {
    if handle.is_null() {
        return errcode::EINVAL as c_long;
    }
    let Some(name) = to_str(filename) else {
        return errcode::EINVAL as c_long;
    };
    let monarch = unsafe { &(*handle).inner };
    match catch_unwind(AssertUnwindSafe(|| monarch.file_size(name))) {
        Ok(Ok(size)) => size as c_long,
        Ok(Err(monarch_core::Error::UnknownFile(_))) => errcode::ENOENT as c_long,
        Ok(Err(_)) => errcode::EIO as c_long,
        Err(_) => errcode::EPANIC as c_long,
    }
}

/// Number of files registered in the namespace, or a negative [`errcode`].
///
/// # Safety
/// `handle` must come from [`monarch_init_json`] and not be freed.
#[no_mangle]
pub unsafe extern "C" fn monarch_file_count(handle: *mut MonarchHandle) -> c_long {
    if handle.is_null() {
        return errcode::EINVAL as c_long;
    }
    let monarch = unsafe { &(*handle).inner };
    monarch.metadata().len() as c_long
}

/// Export the middleware statistics as a JSON document. The returned
/// string must be released with [`monarch_string_free`]. Null on failure.
///
/// # Safety
/// `handle` must come from [`monarch_init_json`] and not be freed.
#[no_mangle]
pub unsafe extern "C" fn monarch_stats_json(handle: *mut MonarchHandle) -> *mut c_char {
    if handle.is_null() {
        return ptr::null_mut();
    }
    let monarch = unsafe { &(*handle).inner };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        serde_json::to_string(&monarch.stats()).ok()
    }));
    match outcome {
        Ok(Some(json)) => match CString::new(json) {
            Ok(c) => c.into_raw(),
            Err(_) => ptr::null_mut(),
        },
        _ => ptr::null_mut(),
    }
}

/// Export the distributed peer-cache snapshot as a JSON document: the
/// node roster, shard seed, peer hit/fallback/timeout counters, the bytes
/// served to peers, and the residency view — what a framework shim needs
/// to judge its peer hit rate. Null when the middleware was built without
/// a `cluster` section, or on failure. The returned string must be
/// released with [`monarch_string_free`].
///
/// # Safety
/// `handle` must come from [`monarch_init_json`] and not be freed.
#[no_mangle]
pub unsafe extern "C" fn monarch_cluster_stats_json(handle: *mut MonarchHandle) -> *mut c_char {
    if handle.is_null() {
        return ptr::null_mut();
    }
    let monarch = unsafe { &(*handle).inner };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        monarch
            .cluster_snapshot()
            .and_then(|snap| serde_json::to_string(&snap).ok())
    }));
    match outcome {
        Ok(Some(json)) => match CString::new(json) {
            Ok(c) => c.into_raw(),
            Err(_) => ptr::null_mut(),
        },
        _ => ptr::null_mut(),
    }
}

/// Export the tier-health snapshot as a JSON document: the hierarchy
/// degraded flag plus, per tier, the breaker state
/// (closed/suspect/quarantined), error-rate EWMA, consecutive-failure
/// count, and the quarantine/probe/recovery counters — what a framework
/// shim needs to decide whether the fast tier is currently trustworthy.
/// Null on failure. The returned string must be released with
/// [`monarch_string_free`].
///
/// # Safety
/// `handle` must come from [`monarch_init_json`] and not be freed.
#[no_mangle]
pub unsafe extern "C" fn monarch_health_json(handle: *mut MonarchHandle) -> *mut c_char {
    if handle.is_null() {
        return ptr::null_mut();
    }
    let monarch = unsafe { &(*handle).inner };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        serde_json::to_string(&monarch.hierarchy().health().snapshot()).ok()
    }));
    match outcome {
        Ok(Some(json)) => match CString::new(json) {
            Ok(c) => c.into_raw(),
            Err(_) => ptr::null_mut(),
        },
        _ => ptr::null_mut(),
    }
}

/// Export the telemetry registry as Prometheus-style text exposition
/// (counters plus cumulative latency histograms, `histogram_quantile()`
/// ready) — the same registry the CLI's `monarch metrics` renders. The
/// returned string must be released with [`monarch_string_free`]. Null on
/// failure.
///
/// # Safety
/// `handle` must come from [`monarch_init_json`] and not be freed.
#[no_mangle]
pub unsafe extern "C" fn monarch_metrics_text(handle: *mut MonarchHandle) -> *mut c_char {
    if handle.is_null() {
        return ptr::null_mut();
    }
    let monarch = unsafe { &(*handle).inner };
    let outcome = catch_unwind(AssertUnwindSafe(|| monarch.metrics_text()));
    match outcome {
        Ok(text) => match CString::new(text) {
            Ok(c) => c.into_raw(),
            Err(_) => ptr::null_mut(),
        },
        Err(_) => ptr::null_mut(),
    }
}

/// Export the buffered telemetry journal as JSON lines (one event object
/// per line, oldest first; empty string when the journal is empty or
/// disabled). Non-destructive. The returned string must be released with
/// [`monarch_string_free`]. Null on failure.
///
/// # Safety
/// `handle` must come from [`monarch_init_json`] and not be freed.
#[no_mangle]
pub unsafe extern "C" fn monarch_events_json(handle: *mut MonarchHandle) -> *mut c_char {
    if handle.is_null() {
        return ptr::null_mut();
    }
    let monarch = unsafe { &(*handle).inner };
    let outcome = catch_unwind(AssertUnwindSafe(|| monarch.events_json()));
    match outcome {
        Ok(lines) => match CString::new(lines) {
            Ok(c) => c.into_raw(),
            Err(_) => ptr::null_mut(),
        },
        Err(_) => ptr::null_mut(),
    }
}

/// Export the recorded trace spans as a Chrome Trace Event / Perfetto
/// JSON document (load it in `ui.perfetto.dev`). Non-destructive; returns
/// the empty-trace shell when tracing is off (`trace_sample_every_n: 0`).
/// The returned string must be released with [`monarch_string_free`].
/// Null on failure.
///
/// # Safety
/// `handle` must come from [`monarch_init_json`] and not be freed.
#[no_mangle]
pub unsafe extern "C" fn monarch_trace_json(handle: *mut MonarchHandle) -> *mut c_char {
    if handle.is_null() {
        return ptr::null_mut();
    }
    let monarch = unsafe { &(*handle).inner };
    let outcome = catch_unwind(AssertUnwindSafe(|| monarch.trace_json()));
    match outcome {
        Ok(json) => match CString::new(json) {
            Ok(c) => c.into_raw(),
            Err(_) => ptr::null_mut(),
        },
        Err(_) => ptr::null_mut(),
    }
}

/// Export the workload observatory's bottleneck-attribution report as a
/// JSON document: the five wall-time buckets (pfs-bound,
/// copy-lane-saturated, prefetch-lag, lock-or-queue, compute-bound), the
/// top-5 hot files, and the prefetched-never-read waste list. Wall time
/// is measured from middleware construction; the ledger is folded at
/// concurrency 1 (callers tracking their own reader count should rebuild
/// the report from `/snapshot` instead). Null when telemetry or the
/// access profiler is disabled, or on failure. The returned string must
/// be released with [`monarch_string_free`].
///
/// # Safety
/// `handle` must come from [`monarch_init_json`] and not be freed.
#[no_mangle]
pub unsafe extern "C" fn monarch_report_json(handle: *mut MonarchHandle) -> *mut c_char {
    if handle.is_null() {
        return ptr::null_mut();
    }
    let monarch = unsafe { &(*handle).inner };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let wall_s = monarch.telemetry().now_micros() as f64 / 1e6;
        let snap = monarch.telemetry_snapshot();
        monarch_core::ObserveReport::from_snapshot(&snap, wall_s, 1, 5)
            .and_then(|report| serde_json::to_string(&report).ok())
    }));
    match outcome {
        Ok(Some(json)) => match CString::new(json) {
            Ok(c) => c.into_raw(),
            Err(_) => ptr::null_mut(),
        },
        _ => ptr::null_mut(),
    }
}

/// Start the observability HTTP exporter (`/metrics`, `/snapshot`,
/// `/trace`, `/healthz`) on `addr` (e.g. `"127.0.0.1:9464"`; a `0` port
/// picks a free one). Returns the *bound* port (> 0) on success, or a
/// negative [`errcode`]: `EINVAL` for a null/invalid address string,
/// `ECONFIG` when an exporter is already running on this handle, `EIO`
/// when the bind fails.
///
/// # Safety
/// `handle` must come from [`monarch_init_json`] and not be freed; `addr`
/// must be a valid NUL-terminated C string.
#[no_mangle]
pub unsafe extern "C" fn monarch_serve_start(
    handle: *mut MonarchHandle,
    addr: *const c_char,
) -> c_long {
    if handle.is_null() {
        return errcode::EINVAL as c_long;
    }
    let Some(addr) = to_str(addr) else {
        return errcode::EINVAL as c_long;
    };
    let monarch = unsafe { &(*handle).inner };
    let outcome = catch_unwind(AssertUnwindSafe(|| monarch.serve(addr)));
    match outcome {
        Ok(Ok(bound)) => c_long::from(bound.port()),
        Ok(Err(monarch_core::Error::InvalidConfig(_))) => errcode::ECONFIG as c_long,
        Ok(Err(_)) => errcode::EIO as c_long,
        Err(_) => errcode::EPANIC as c_long,
    }
}

/// Stop the exporter started by [`monarch_serve_start`] (or the config's
/// `metrics_addr`), joining its threads. Returns 1 if one was running,
/// 0 if not, or a negative [`errcode`].
///
/// # Safety
/// `handle` must come from [`monarch_init_json`] and not be freed.
#[no_mangle]
pub unsafe extern "C" fn monarch_serve_stop(handle: *mut MonarchHandle) -> c_int {
    if handle.is_null() {
        return errcode::EINVAL as c_int;
    }
    let monarch = unsafe { &(*handle).inner };
    match catch_unwind(AssertUnwindSafe(|| monarch.serve_stop())) {
        Ok(was_running) => c_int::from(was_running),
        Err(_) => errcode::EPANIC as c_int,
    }
}

/// Release a string returned by [`monarch_stats_json`],
/// [`monarch_metrics_text`], [`monarch_events_json`] or
/// [`monarch_trace_json`].
///
/// # Safety
/// `s` must come from this library and not be freed twice.
#[no_mangle]
pub unsafe extern "C" fn monarch_string_free(s: *mut c_char) {
    if !s.is_null() {
        // SAFETY: produced by CString::into_raw above.
        drop(unsafe { CString::from_raw(s) });
    }
}

/// Submit a clairvoyant access plan: `plan` is a newline-separated list of
/// file names in the order the framework will read them during the upcoming
/// epoch (blank lines ignored). The middleware stages the listed files into
/// faster tiers ahead of the read cursor, within the configured lookahead
/// and in-flight byte budget. Any previous plan is cancelled first. Returns
/// the number of plan entries admitted to the prefetch window (0 when
/// prefetching is disabled, i.e. `prefetch_lookahead: 0`), or a negative
/// [`errcode`].
///
/// # Safety
/// `handle` must come from [`monarch_init_json`] and not be freed; `plan`
/// must be a valid NUL-terminated C string.
#[no_mangle]
pub unsafe extern "C" fn monarch_submit_plan(
    handle: *mut MonarchHandle,
    plan: *const c_char,
) -> c_long {
    if handle.is_null() {
        return errcode::EINVAL as c_long;
    }
    let Some(text) = to_str(plan) else {
        return errcode::EINVAL as c_long;
    };
    let monarch = unsafe { &(*handle).inner };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let plan = monarch_core::AccessPlan::from_lines(text);
        monarch.submit_plan(&plan)
    }));
    match outcome {
        Ok(admitted) => admitted as c_long,
        Err(_) => errcode::EPANIC as c_long,
    }
}

/// Cancel the active access plan, if any: queued prefetch copies are
/// withdrawn (in-flight ones finish). Returns the number of withdrawn
/// queued copies, or a negative [`errcode`].
///
/// # Safety
/// `handle` must come from [`monarch_init_json`] and not be freed.
#[no_mangle]
pub unsafe extern "C" fn monarch_cancel_plan(handle: *mut MonarchHandle) -> c_long {
    if handle.is_null() {
        return errcode::EINVAL as c_long;
    }
    let monarch = unsafe { &(*handle).inner };
    match catch_unwind(AssertUnwindSafe(|| monarch.cancel_prefetch_plan())) {
        Ok(withdrawn) => withdrawn as c_long,
        Err(_) => errcode::EPANIC as c_long,
    }
}

/// Block until all background placement copies are finished (tests,
/// graceful teardown).
///
/// # Safety
/// `handle` must come from [`monarch_init_json`] and not be freed.
#[no_mangle]
pub unsafe extern "C" fn monarch_wait_idle(handle: *mut MonarchHandle) -> c_int {
    if handle.is_null() {
        return errcode::EINVAL as c_int;
    }
    let monarch = unsafe { &(*handle).inner };
    match catch_unwind(AssertUnwindSafe(|| monarch.wait_placement_idle())) {
        Ok(()) => 0,
        Err(_) => errcode::EPANIC as c_int,
    }
}

/// Destroy the middleware: drains the copy pool and frees the handle.
///
/// # Safety
/// `handle` must come from [`monarch_init_json`]; it must not be used
/// afterwards.
#[no_mangle]
pub unsafe extern "C" fn monarch_shutdown(handle: *mut MonarchHandle) {
    if handle.is_null() {
        return;
    }
    // SAFETY: unique ownership returns to Rust here.
    let boxed = unsafe { Box::from_raw(handle) };
    let _ = catch_unwind(AssertUnwindSafe(move || {
        let _ = boxed.inner.shutdown();
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use monarch_core::config::{MonarchConfig, TierConfig};
    use std::ffi::CString;

    /// Build a config over two real directories with staged data.
    fn staged_config(tag: &str) -> (CString, std::path::PathBuf, u64) {
        let root = std::env::temp_dir().join(format!("monarch-ffi-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let data = root.join("pfs");
        std::fs::create_dir_all(&data).unwrap();
        let mut total = 0u64;
        for i in 0..4 {
            let content = vec![i as u8; 1000 + i as usize];
            total += content.len() as u64;
            std::fs::write(data.join(format!("f{i}")), content).unwrap();
        }
        let cfg = MonarchConfig::builder()
            .tier(
                TierConfig::posix("ssd", root.join("ssd").to_string_lossy().to_string())
                    .with_capacity(1 << 20),
            )
            .tier(TierConfig::posix("pfs", data.to_string_lossy().to_string()))
            .pool_threads(2)
            .build();
        (CString::new(cfg.to_json()).unwrap(), root, total)
    }

    #[test]
    fn full_lifecycle_through_c_abi() {
        let (json, root, _total) = staged_config("lifecycle");
        unsafe {
            let h = monarch_init_json(json.as_ptr());
            assert!(!h.is_null());
            assert_eq!(monarch_file_count(h), 4);

            let name = CString::new("f2").unwrap();
            assert_eq!(monarch_file_size(h, name.as_ptr()), 1002);

            let mut buf = vec![0u8; 4096];
            let n = monarch_read(h, name.as_ptr(), 0, buf.as_mut_ptr(), buf.len());
            assert_eq!(n, 1002);
            assert!(buf[..1002].iter().all(|&b| b == 2));

            // Offset read.
            let n = monarch_read(h, name.as_ptr(), 1000, buf.as_mut_ptr(), buf.len());
            assert_eq!(n, 2);

            // EOF.
            let n = monarch_read(h, name.as_ptr(), 5000, buf.as_mut_ptr(), buf.len());
            assert_eq!(n, 0);

            assert_eq!(monarch_wait_idle(h), 0);
            let stats = monarch_stats_json(h);
            assert!(!stats.is_null());
            let s = CStr::from_ptr(stats).to_str().unwrap().to_string();
            assert!(s.contains("copies_completed"), "{s}");
            monarch_string_free(stats);

            // Second read is served locally now.
            let n = monarch_read(h, name.as_ptr(), 0, buf.as_mut_ptr(), buf.len());
            assert_eq!(n, 1002);

            monarch_shutdown(h);
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn metrics_text_roundtrip() {
        let (json, root, _) = staged_config("metrics");
        unsafe {
            let h = monarch_init_json(json.as_ptr());
            assert!(!h.is_null());
            let name = CString::new("f1").unwrap();
            let mut buf = vec![0u8; 4096];
            assert!(monarch_read(h, name.as_ptr(), 0, buf.as_mut_ptr(), buf.len()) > 0);
            assert_eq!(monarch_wait_idle(h), 0);

            // Prometheus text: valid UTF-8, carries the per-tier counters
            // and latency summaries, freed via monarch_string_free.
            let text_ptr = monarch_metrics_text(h);
            assert!(!text_ptr.is_null());
            let text = CStr::from_ptr(text_ptr)
                .to_str()
                .expect("valid UTF-8")
                .to_string();
            assert!(
                text.contains("# TYPE monarch_tier_reads_total counter"),
                "{text}"
            );
            assert!(text.contains("monarch_tier_reads_total{tier=\"ssd\"}"));
            assert!(
                text.contains("# TYPE monarch_read_latency_seconds histogram"),
                "{text}"
            );
            assert!(text.contains("monarch_read_latency_seconds_bucket{tier=\"pfs\",le=\"+Inf\"}"));
            assert!(text.contains("monarch_copies_completed_total 1"));
            monarch_string_free(text_ptr);

            // Journal JSON lines: each line parses as a JSON object with
            // the event schema.
            let ev_ptr = monarch_events_json(h);
            assert!(!ev_ptr.is_null());
            let events = CStr::from_ptr(ev_ptr)
                .to_str()
                .expect("valid UTF-8")
                .to_string();
            assert!(!events.is_empty());
            for line in events.lines() {
                let v: serde_json::Value = serde_json::from_str(line).unwrap();
                assert!(v.get("seq").is_some() && v.get("event").is_some(), "{line}");
            }
            assert!(events.contains("\"event\":\"copy_completed\""));
            monarch_string_free(ev_ptr);

            // Null handle → null, not a crash.
            assert!(monarch_metrics_text(ptr::null_mut()).is_null());
            assert!(monarch_events_json(ptr::null_mut()).is_null());

            monarch_shutdown(h);
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn trace_json_roundtrip() {
        use monarch_core::TelemetryConfig;
        let root = std::env::temp_dir().join(format!("monarch-ffi-trace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let data = root.join("pfs");
        std::fs::create_dir_all(&data).unwrap();
        std::fs::write(data.join("f0"), vec![7u8; 2048]).unwrap();
        let cfg = MonarchConfig::builder()
            .tier(
                TierConfig::posix("ssd", root.join("ssd").to_string_lossy().to_string())
                    .with_capacity(1 << 20),
            )
            .tier(TierConfig::posix("pfs", data.to_string_lossy().to_string()))
            .pool_threads(1)
            .telemetry(TelemetryConfig::with_tracing())
            .build();
        let json = CString::new(cfg.to_json()).unwrap();
        unsafe {
            let h = monarch_init_json(json.as_ptr());
            assert!(!h.is_null());
            let name = CString::new("f0").unwrap();
            let mut buf = vec![0u8; 256];
            assert!(monarch_read(h, name.as_ptr(), 0, buf.as_mut_ptr(), buf.len()) > 0);
            assert_eq!(monarch_wait_idle(h), 0);

            let tr_ptr = monarch_trace_json(h);
            assert!(!tr_ptr.is_null());
            let trace = CStr::from_ptr(tr_ptr)
                .to_str()
                .expect("valid UTF-8")
                .to_string();
            let v: serde_json::Value = serde_json::from_str(&trace).unwrap();
            let events = v["traceEvents"].as_array().unwrap();
            assert!(events.iter().any(|e| e["name"] == "driver_pread"));
            assert!(events.iter().any(|e| e["name"] == "copy_exec"));
            assert!(events.iter().any(|e| e["ph"] == "s"));
            monarch_string_free(tr_ptr);

            // Null handle → null, not a crash.
            assert!(monarch_trace_json(ptr::null_mut()).is_null());

            monarch_shutdown(h);
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn report_json_roundtrip() {
        let (json, root, _) = staged_config("report");
        unsafe {
            let h = monarch_init_json(json.as_ptr());
            assert!(!h.is_null());
            let name = CString::new("f0").unwrap();
            let mut buf = vec![0u8; 4096];
            assert!(monarch_read(h, name.as_ptr(), 0, buf.as_mut_ptr(), buf.len()) > 0);
            assert_eq!(monarch_wait_idle(h), 0);
            assert!(monarch_read(h, name.as_ptr(), 0, buf.as_mut_ptr(), buf.len()) > 0);

            let rp_ptr = monarch_report_json(h);
            assert!(!rp_ptr.is_null());
            let report = CStr::from_ptr(rp_ptr)
                .to_str()
                .expect("valid UTF-8")
                .to_string();
            let v: serde_json::Value = serde_json::from_str(&report).unwrap();
            assert!(v["wall_s"].as_f64().unwrap() > 0.0, "{report}");
            assert!(v["ledger"].get("pfs_bound_s").is_some(), "{report}");
            assert!(v["ledger"].get("compute_bound_s").is_some(), "{report}");
            let hot = v["top_hot"].as_array().unwrap();
            assert!(hot.iter().any(|f| f["file"] == "f0"), "{report}");
            monarch_string_free(rp_ptr);

            // Null handle → null, not a crash.
            assert!(monarch_report_json(ptr::null_mut()).is_null());

            monarch_shutdown(h);
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn access_plan_through_c_abi() {
        let root = std::env::temp_dir().join(format!("monarch-ffi-plan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let data = root.join("pfs");
        std::fs::create_dir_all(&data).unwrap();
        for i in 0..3 {
            std::fs::write(data.join(format!("f{i}")), vec![i as u8; 2048]).unwrap();
        }
        let cfg = MonarchConfig::builder()
            .tier(
                TierConfig::posix("ssd", root.join("ssd").to_string_lossy().to_string())
                    .with_capacity(1 << 20),
            )
            .tier(TierConfig::posix("pfs", data.to_string_lossy().to_string()))
            .pool_threads(2)
            .prefetch_lookahead(8)
            .build();
        let json = CString::new(cfg.to_json()).unwrap();
        unsafe {
            let h = monarch_init_json(json.as_ptr());
            assert!(!h.is_null());

            // Unknown names are skipped; blank lines ignored.
            let plan = CString::new("f0\nf1\n\nf2\nghost\n").unwrap();
            assert_eq!(monarch_submit_plan(h, plan.as_ptr()), 3);
            assert_eq!(monarch_wait_idle(h), 0);

            // All three files were staged before any read.
            let stats = monarch_stats_json(h);
            let s = CStr::from_ptr(stats).to_str().unwrap().to_string();
            let v: serde_json::Value = serde_json::from_str(&s).unwrap();
            assert_eq!(v["prefetches_scheduled"], 3, "{s}");
            assert_eq!(v["copies_completed"], 3, "{s}");
            monarch_string_free(stats);

            // Reads now hit the fast tier and count as prefetch hits.
            let name = CString::new("f1").unwrap();
            let mut buf = vec![0u8; 4096];
            assert_eq!(
                monarch_read(h, name.as_ptr(), 0, buf.as_mut_ptr(), buf.len()),
                2048
            );
            let stats = monarch_stats_json(h);
            let s = CStr::from_ptr(stats).to_str().unwrap().to_string();
            let v: serde_json::Value = serde_json::from_str(&s).unwrap();
            assert_eq!(v["prefetch_hits"], 1, "{s}");
            monarch_string_free(stats);

            // Nothing left queued, so cancelling withdraws zero.
            assert_eq!(monarch_cancel_plan(h), 0);

            // Argument validation.
            assert_eq!(
                monarch_submit_plan(h, ptr::null()),
                errcode::EINVAL as c_long
            );
            assert_eq!(
                monarch_submit_plan(ptr::null_mut(), plan.as_ptr()),
                errcode::EINVAL as c_long
            );
            assert_eq!(
                monarch_cancel_plan(ptr::null_mut()),
                errcode::EINVAL as c_long
            );

            monarch_shutdown(h);
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn serve_through_c_abi() {
        let (json, root, _) = staged_config("serve");
        unsafe {
            let h = monarch_init_json(json.as_ptr());
            assert!(!h.is_null());
            let addr = CString::new("127.0.0.1:0").unwrap();
            let port = monarch_serve_start(h, addr.as_ptr());
            assert!(port > 0, "expected a bound port, got {port}");
            // A second start while one runs is a config error.
            assert_eq!(
                monarch_serve_start(h, addr.as_ptr()),
                errcode::ECONFIG as c_long
            );

            // Scrape /metrics over plain TCP.
            use std::io::{Read, Write};
            let mut s = std::net::TcpStream::connect(("127.0.0.1", port as u16)).unwrap();
            s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            let mut resp = String::new();
            s.read_to_string(&mut resp).unwrap();
            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
            assert!(resp.contains("monarch_tier_reads_total"), "{resp}");

            assert_eq!(monarch_serve_stop(h), 1);
            assert_eq!(
                monarch_serve_stop(h),
                0,
                "second stop finds nothing running"
            );

            // Argument validation.
            assert_eq!(
                monarch_serve_start(ptr::null_mut(), addr.as_ptr()),
                errcode::EINVAL as c_long
            );
            assert_eq!(
                monarch_serve_start(h, ptr::null()),
                errcode::EINVAL as c_long
            );
            assert_eq!(
                monarch_serve_stop(ptr::null_mut()),
                errcode::EINVAL as c_int
            );

            monarch_shutdown(h);
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn cluster_config_and_stats_through_c_abi() {
        let (json, root, _) = staged_config("cluster");
        unsafe {
            // Chain monarch_configure calls to graft a single-node cluster
            // section onto a plain config, C-shim style.
            let key = CString::new("cluster.nodes").unwrap();
            let val = CString::new("127.0.0.1:0").unwrap();
            let step1 = monarch_configure(json.as_ptr(), key.as_ptr(), val.as_ptr());
            assert!(!step1.is_null());
            let key = CString::new("cluster.shard_seed").unwrap();
            let val = CString::new("42").unwrap();
            let step2 = monarch_configure(step1, key.as_ptr(), val.as_ptr());
            assert!(!step2.is_null());
            monarch_string_free(step1);

            let h = monarch_init_json(step2);
            assert!(!h.is_null());
            monarch_string_free(step2);

            // Single-node cluster: every file is self-owned, so reads stay
            // local, but the snapshot is live and carries the roster.
            let name = CString::new("f0").unwrap();
            let mut buf = vec![0u8; 4096];
            assert!(monarch_read(h, name.as_ptr(), 0, buf.as_mut_ptr(), buf.len()) > 0);
            assert_eq!(monarch_wait_idle(h), 0);

            let cs_ptr = monarch_cluster_stats_json(h);
            assert!(!cs_ptr.is_null());
            let s = CStr::from_ptr(cs_ptr).to_str().unwrap().to_string();
            let v: serde_json::Value = serde_json::from_str(&s).unwrap();
            assert_eq!(v["shard_seed"], 42, "{s}");
            assert_eq!(v["nodes"].as_array().unwrap().len(), 1, "{s}");
            assert_eq!(v["peer_hits"], 0, "{s}");
            assert!(v.get("peer_fallbacks").is_some(), "{s}");
            monarch_string_free(cs_ptr);
            monarch_shutdown(h);

            // A handle without a cluster section yields null, not junk.
            let h2 = monarch_init_json(json.as_ptr());
            assert!(!h2.is_null());
            assert!(monarch_cluster_stats_json(h2).is_null());

            // Health, by contrast, is always present: every hierarchy
            // carries a breaker per tier, closed while nothing has failed.
            let hj_ptr = monarch_health_json(h2);
            assert!(!hj_ptr.is_null());
            let hs = CStr::from_ptr(hj_ptr).to_str().unwrap().to_string();
            let hv: serde_json::Value = serde_json::from_str(&hs).unwrap();
            assert_eq!(hv["degraded"], false, "{hs}");
            assert_eq!(hv["tiers"][0]["state"], "closed", "{hs}");
            monarch_string_free(hj_ptr);
            monarch_shutdown(h2);
            assert!(monarch_cluster_stats_json(ptr::null_mut()).is_null());
            assert!(monarch_health_json(ptr::null_mut()).is_null());

            // Unknown keys and unparsable values are rejected.
            let bad_key = CString::new("cluster.bogus").unwrap();
            assert!(monarch_configure(json.as_ptr(), bad_key.as_ptr(), val.as_ptr()).is_null());
            let key = CString::new("cluster.node_id").unwrap();
            let bad_val = CString::new("not-a-number").unwrap();
            assert!(monarch_configure(json.as_ptr(), key.as_ptr(), bad_val.as_ptr()).is_null());
            assert!(monarch_configure(ptr::null(), key.as_ptr(), val.as_ptr()).is_null());
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn policy_keys_route_through_configure() {
        use monarch_core::config::{AdmissionKind, PolicyKind};
        let (json, root, _) = staged_config("policy-keys");
        let mut cfg = MonarchConfig::from_json(json.to_str().unwrap()).unwrap();
        assert!(apply_config_key(&mut cfg, "policy.kind", "learned").is_some());
        assert!(apply_config_key(&mut cfg, "policy.admission", "size_threshold:1048576").is_some());
        assert_eq!(cfg.policy, PolicyKind::Learned);
        assert_eq!(
            cfg.admission,
            AdmissionKind::SizeThreshold { max_bytes: 1 << 20 }
        );
        // Policy keys must not graft a cluster section as a side effect.
        assert!(cfg.cluster.is_none());
        // Unknown spellings are rejected.
        assert!(apply_config_key(&mut cfg, "policy.kind", "bogus").is_none());
        assert!(apply_config_key(&mut cfg, "policy.admission", "size_threshold:x").is_none());
        // And the composed config survives the C round trip.
        unsafe {
            let key = CString::new("policy.kind").unwrap();
            let val = CString::new("lru_evict").unwrap();
            let out = monarch_configure(json.as_ptr(), key.as_ptr(), val.as_ptr());
            assert!(!out.is_null());
            let back = MonarchConfig::from_json(CStr::from_ptr(out).to_str().unwrap()).unwrap();
            assert_eq!(back.policy, PolicyKind::LruEvict);
            monarch_string_free(out);
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn error_codes() {
        let (json, root, _) = staged_config("errors");
        unsafe {
            assert!(monarch_init_json(ptr::null()).is_null());
            let bad = CString::new("{not json").unwrap();
            assert!(monarch_init_json(bad.as_ptr()).is_null());

            let h = monarch_init_json(json.as_ptr());
            assert!(!h.is_null());
            let missing = CString::new("nope").unwrap();
            let mut buf = [0u8; 8];
            assert_eq!(
                monarch_read(h, missing.as_ptr(), 0, buf.as_mut_ptr(), buf.len()),
                errcode::ENOENT as c_long
            );
            assert_eq!(
                monarch_read(h, ptr::null(), 0, buf.as_mut_ptr(), buf.len()),
                errcode::EINVAL as c_long
            );
            let f0 = CString::new("f0").unwrap();
            assert_eq!(
                monarch_read(h, f0.as_ptr(), 0, ptr::null_mut(), 8),
                errcode::EINVAL as c_long
            );
            assert_eq!(
                monarch_file_size(h, missing.as_ptr()),
                errcode::ENOENT as c_long
            );
            monarch_shutdown(h);
            monarch_shutdown(ptr::null_mut()); // tolerated
        }
        std::fs::remove_dir_all(&root).unwrap();
    }
}
