//! Offline stand-in for the `rand` crate: a splitmix64-backed `StdRng`
//! covering exactly the API surface simfs/tfrecord use (`seed_from_u64`,
//! `gen`, `gen_range`, `fill_bytes`). Deterministic but NOT the real
//! StdRng stream — fine for compile + smoke runs, not for golden values.

pub mod rngs {
    /// Seeded deterministic RNG (splitmix64).
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types `Rng::gen` can produce.
pub trait Sample {
    fn sample<R: RngCore + ?Sized>(r: &mut R) -> Self;
}

impl Sample for u64 {
    fn sample<R: RngCore + ?Sized>(r: &mut R) -> Self {
        r.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: RngCore + ?Sized>(r: &mut R) -> Self {
        (r.next_u64() >> 32) as u32
    }
}

impl Sample for usize {
    fn sample<R: RngCore + ?Sized>(r: &mut R) -> Self {
        r.next_u64() as usize
    }
}

impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(r: &mut R) -> Self {
        (r.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(r: &mut R) -> Self {
        r.next_u64() & 1 == 1
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, r: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<u64> {
    type Output = u64;
    fn sample<R: RngCore + ?Sized>(self, r: &mut R) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + r.next_u64() % (self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;
    fn sample<R: RngCore + ?Sized>(self, r: &mut R) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + (r.next_u64() as usize) % (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<usize> {
    type Output = usize;
    fn sample<R: RngCore + ?Sized>(self, r: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (r.next_u64() as usize) % (hi - lo + 1)
    }
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, r: &mut R) -> f64 {
        let u = f64::sample(r);
        self.start + u * (self.end - self.start)
    }
}

pub trait Rng: RngCore {
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}
