//! Minimal std-backed stand-in for parking_lot, used only for offline
//! type-checking and test runs in this container. Never committed into the
//! build graph.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Self(std::sync::Mutex::new(t))
    }
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

pub struct Condvar(std::sync::Condvar);

pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(&mut guard.0, inner);
        }
    }
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let (inner, res) = match self.0.wait_timeout(inner, timeout) {
                Ok((g, r)) => (g, r),
                Err(e) => {
                    let (g, r) = e.into_inner();
                    (g, r)
                }
            };
            std::ptr::write(&mut guard.0, inner);
            WaitTimeoutResult(res.timed_out())
        }
    }
    pub fn notify_one(&self) {
        self.0.notify_one();
    }
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(t: T) -> Self {
        Self(std::sync::RwLock::new(t))
    }
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}
