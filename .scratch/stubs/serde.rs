//! Offline stand-in for serde: real trait names, no-op derives. The
//! `__stub_*` hooks let serde_json's `Value` provide a real parser while
//! derived types fall back to a runtime error (stub artifact).

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {
    fn __stub_to_json(&self) -> Option<String> {
        None
    }
}

pub trait Deserialize<'de>: Sized {
    fn __stub_from_json(_s: &str) -> Option<Self> {
        None
    }
}
