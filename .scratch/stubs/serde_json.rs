//! Offline stand-in for serde_json with a real `Value` parser, so tests
//! that inspect hand-emitted JSON run for real. `to_string`/`from_str` on
//! derived types fail at runtime (no-op derives) — a known stub artifact.

use std::collections::BTreeMap;
use std::fmt;

#[derive(Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Map = BTreeMap<String, Value>;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }
    pub fn is_u64(&self) -> bool {
        self.as_u64().is_some()
    }
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(*other as i64)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }
    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.i).copied()
    }
    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.i += 1;
        }
        c
    }
    fn expect(&mut self, c: u8) -> Result<(), String> {
        match self.bump() {
            Some(x) if x == c => Ok(()),
            other => Err(format!("expected {:?}, got {other:?} at {}", c as char, self.i)),
        }
    }
    fn lit(&mut self, s: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {}", self.i))
        }
    }
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.b.get(self.i).ok_or("eof in string")?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.b.get(self.i).ok_or("eof in escape")?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.b.get(self.i..self.i + 4).ok_or("short \\u")?;
                            self.i += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape {e}")),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.i - 1;
                    let mut end = self.i;
                    while end < self.b.len() && self.b[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..end]).map_err(|e| e.to_string())?,
                    );
                    self.i = end;
                }
            }
        }
    }
    fn value(&mut self) -> Result<Value, String> {
        match self.peek().ok_or("eof")? {
            b'{' => {
                self.bump();
                let mut map = Map::new();
                if self.peek() == Some(b'}') {
                    self.bump();
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let v = self.value()?;
                    map.insert(k, v);
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Value::Object(map)),
                        other => return Err(format!("bad object sep {other:?}")),
                    }
                }
            }
            b'[' => {
                self.bump();
                let mut arr = Vec::new();
                if self.peek() == Some(b']') {
                    self.bump();
                    return Ok(Value::Array(arr));
                }
                loop {
                    arr.push(self.value()?);
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Value::Array(arr)),
                        other => return Err(format!("bad array sep {other:?}")),
                    }
                }
            }
            b'"' => {
                self.skip_ws();
                Ok(Value::String(self.string()?))
            }
            b't' => {
                self.skip_ws();
                self.lit("true", Value::Bool(true))
            }
            b'f' => {
                self.skip_ws();
                self.lit("false", Value::Bool(false))
            }
            b'n' => {
                self.skip_ws();
                self.lit("null", Value::Null)
            }
            _ => {
                self.skip_ws();
                let start = self.i;
                while self.i < self.b.len()
                    && matches!(self.b[self.i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    self.i += 1;
                }
                std::str::from_utf8(&self.b[start..self.i])
                    .map_err(|e| e.to_string())?
                    .parse::<f64>()
                    .map(Value::Number)
                    .map_err(|e| e.to_string())
            }
        }
    }
}

pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { b: s.as_bytes(), i: 0 };
    let v = p.value().map_err(Error)?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(Error(format!("trailing data at {}", p.i)));
    }
    Ok(v)
}

impl<'de> serde::Deserialize<'de> for Value {
    fn __stub_from_json(s: &str) -> Option<Self> {
        parse_value(s).ok()
    }
}

impl serde::Serialize for Value {}

pub fn from_str<'a, T: serde::Deserialize<'a>>(s: &'a str) -> Result<T, Error> {
    T::__stub_from_json(s)
        .ok_or_else(|| Error("from_str unsupported for this type in the offline stub".into()))
}

pub fn to_string<T: ?Sized + serde::Serialize>(v: &T) -> Result<String, Error> {
    v.__stub_to_json()
        .ok_or_else(|| Error("to_string unsupported in the offline stub".into()))
}

pub fn to_string_pretty<T: ?Sized + serde::Serialize>(v: &T) -> Result<String, Error> {
    to_string(v)
}
