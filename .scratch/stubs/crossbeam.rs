//! Offline stand-in for `crossbeam`: MPMC `channel::unbounded` on top of
//! `std::sync::mpsc` with a mutex-shared receiver. Covers only what
//! dlpipe's real backend uses (unbounded, send, recv, Clone on both ends).

pub mod channel {
    use std::sync::{mpsc, Arc, Mutex};

    pub use std::sync::mpsc::{RecvError, SendError};

    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.lock().expect("receiver poisoned").recv()
        }
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.lock().expect("receiver poisoned").try_recv()
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}
