//! No-op serde derive stand-in for offline type-checking: emits empty
//! trait impls and swallows `#[serde(...)]` helper attributes.

extern crate proc_macro;

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Find the type name following the first `struct` or `enum` keyword, plus
/// whether a generics list follows it (unsupported — we just skip those).
fn type_name(input: TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return Some(s);
                }
                if s == "struct" || s == "enum" {
                    saw_kw = true;
                }
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => {}
            _ => {}
        }
    }
    None
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl serde::Serialize for {name} {{}}").parse().unwrap(),
        None => TokenStream::new(),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .unwrap(),
        None => TokenStream::new(),
    }
}
