//! End-to-end drive of the refactored product over REAL files: build via
//! MonarchBuilder with posix tiers, generate a real TFRecord dataset,
//! then exercise every TransferEngine intent — demand (reads), plan
//! (prefetch staging), evict (public facade evict), drain (shutdown with
//! queued-prefetch cancel) — and dump the telemetry surfaces.

use std::sync::Arc;

use monarch::core::config::TelemetryConfig;
use monarch::core::driver::PosixDriver;
use monarch::core::hierarchy::StorageHierarchy;
use monarch::core::placement::LruEvict;
use monarch::core::prefetch::AccessPlan;
use monarch::core::{MonarchBuilder, PrefetchConfig, StorageDriver};
use monarch::tfrecord::synth::{generate, DatasetSpec};

fn main() {
    let root = std::env::temp_dir().join(format!("monarch-drive-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let pfs_dir = root.join("pfs");
    let ssd_dir = root.join("ssd");
    std::fs::create_dir_all(&ssd_dir).unwrap();

    // A real sharded TFRecord dataset on disk.
    let spec = DatasetSpec::miniature(256 << 10, 32, 7);
    let ds = generate(&spec, &pfs_dir).unwrap();
    let names: Vec<String> = ds
        .shards
        .iter()
        .map(|p| p.file_name().unwrap().to_string_lossy().to_string())
        .collect();
    println!("dataset: {} shards, {} bytes", names.len(), ds.total_bytes);

    let hierarchy = StorageHierarchy::new(vec![
        (
            "ssd".into(),
            Arc::new(PosixDriver::new("ssd", &ssd_dir).unwrap()) as Arc<dyn StorageDriver>,
            Some(ds.total_bytes / 2), // partial fit => placement skips + evict pressure
        ),
        (
            "pfs".into(),
            Arc::new(PosixDriver::new("pfs", &pfs_dir).unwrap()) as Arc<dyn StorageDriver>,
            None,
        ),
    ])
    .unwrap();

    let m = MonarchBuilder::new()
        .hierarchy(hierarchy)
        .policy(Arc::new(LruEvict::new()))
        .pool_threads(3)
        .telemetry(TelemetryConfig::with_tracing())
        .prefetch(PrefetchConfig { lookahead: 8, max_inflight_bytes: 0 })
        .build()
        .unwrap();
    let report = m.init().unwrap();
    println!("init: {} files registered", report.files);

    // Intent 1: plan — clairvoyant staging of the epoch order.
    let staged = m.submit_plan(&AccessPlan::new(names.clone()));
    println!("plan: {staged} staged");

    // Intent 2: demand — read every shard (byte-verified against the PFS).
    let mut buf = vec![0u8; 64 << 10];
    for name in &names {
        let n = m.read(name, 0, &mut buf).unwrap();
        assert!(n > 0, "read {name} returned 0 bytes");
        let direct = std::fs::read(pfs_dir.join(name)).unwrap();
        assert_eq!(&buf[..n], &direct[..n], "byte mismatch on {name}");
    }
    m.wait_placement_idle();

    // Intent 3: evict — the new public facade intent.
    let placed: Vec<&String> =
        names.iter().filter(|n| m.metadata().get(n).map(|i| i.tier) == Some(0)).collect();
    assert!(!placed.is_empty(), "nothing placed on the fast tier");
    let evicted = m.evict(placed[0]).unwrap();
    assert!(evicted, "evict({}) returned false", placed[0]);
    assert_eq!(m.metadata().get(placed[0]).unwrap().tier, 1);
    println!("evict: {} moved back to pfs", placed[0]);

    // Re-submit a plan, then drain with entries still queued: shutdown
    // must cancel queued prefetches before joining workers.
    m.submit_plan(&AccessPlan::new(names.clone()));

    let metrics = m.metrics_text();
    assert!(metrics.contains("monarch_"), "metrics text missing counters");
    let events = m.events_json();
    assert!(events.contains("copy_completed"), "journal missing copy lifecycle");
    let trace = m.trace_json();
    assert!(trace.contains("traceEvents"), "trace export malformed");
    println!(
        "telemetry: {} metric lines, {} journal bytes, {} trace bytes",
        metrics.lines().count(),
        events.len(),
        trace.len()
    );

    let stats = m.shutdown();
    println!(
        "shutdown: scheduled={} completed={} skipped={} evictions={} prefetch(sched={} hits={} canceled={}) join_failures={}",
        stats.copies_scheduled,
        stats.copies_completed,
        stats.placement_skipped,
        stats.evictions,
        stats.prefetches_scheduled,
        stats.prefetch_hits,
        stats.prefetch_canceled,
        stats.pool_join_failures
    );
    assert_eq!(stats.pool_join_failures, 0);
    assert_eq!(
        stats.copies_scheduled,
        stats.copies_completed + stats.placement_skipped + stats.copies_failed
            + stats.prefetch_canceled
    );
    std::fs::remove_dir_all(&root).unwrap();
    println!("DRIVE OK");
}
