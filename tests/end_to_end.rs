//! Cross-crate integration: a real TFRecord dataset on disk, streamed by
//! the real pipeline through the real middleware — epoch by epoch — with
//! byte-level verification against the generator.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use monarch::core::config::{MonarchConfig, PolicyKind, TierConfig};
use monarch::core::Monarch;
use monarch::dlpipe::config::PipelineConfig;
use monarch::dlpipe::real::{RealBackend, RealTrainer};
use monarch::tfrecord::synth::{generate, parse_sample_header, DatasetSpec};
use monarch::tfrecord::RecordReader;

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("monarch-e2e-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn pipeline() -> PipelineConfig {
    PipelineConfig {
        readers: 4,
        chunk_bytes: 16 << 10,
        prefetch_batches: 2,
        seed: 5,
        trace_interval_secs: None,
        ..PipelineConfig::default()
    }
}

/// Read every record of every shard through MONARCH and verify each
/// sample's embedded id/label header.
#[test]
fn records_decode_correctly_through_monarch() {
    let root = tmp("decode");
    let data = root.join("pfs");
    let spec = DatasetSpec::miniature(1 << 20, 128, 77);
    let ds = generate(&spec, &data).unwrap();

    let cfg = MonarchConfig::builder()
        .tier(
            TierConfig::posix("ssd", root.join("ssd").to_string_lossy().to_string())
                .with_capacity(ds.total_bytes),
        )
        .tier(TierConfig::posix("pfs", data.to_string_lossy().to_string()))
        .pool_threads(4)
        .build();
    let m = Monarch::new(cfg).unwrap();
    m.init().unwrap();

    for pass in 0..2 {
        let mut ids = Vec::new();
        for shard in &ds.shards {
            let name = shard.file_name().unwrap().to_string_lossy();
            let bytes = m.read_full(&name).unwrap();
            let mut r = RecordReader::new(std::io::Cursor::new(&bytes));
            while let Some(rec) = r.next_record_ref().unwrap() {
                let (id, label) = parse_sample_header(rec).unwrap();
                assert_eq!(label, id % 1000);
                ids.push(id);
            }
        }
        ids.sort_unstable();
        assert_eq!(ids, (0..128).collect::<Vec<u64>>(), "pass {pass}");
        m.wait_placement_idle();
    }
    // Second pass came from the SSD tier.
    let stats = m.stats();
    assert!(stats.copies_completed > 0);
    assert!(stats.tiers[0].reads > 0);
    fs::remove_dir_all(&root).unwrap();
}

/// The three real setups deliver identical data (fingerprint equality) and
/// MONARCH's PFS traffic drops after the first epoch.
#[test]
fn setups_agree_and_pfs_traffic_drops() {
    let root = tmp("agree");
    let data = root.join("pfs");
    let spec = DatasetSpec::miniature(2 << 20, 192, 13);
    let ds = generate(&spec, &data).unwrap();

    let direct = RealTrainer::new(
        RealBackend::Direct(monarch::core::driver::PosixDriver::new("pfs", &data).unwrap()),
        &data,
        pipeline(),
    )
    .unwrap();
    let baseline = direct.run_epoch(0).unwrap();

    let cfg = MonarchConfig::builder()
        .tier(
            TierConfig::posix("ssd", root.join("ssd").to_string_lossy().to_string())
                .with_capacity(ds.total_bytes),
        )
        .tier(TierConfig::posix("pfs", data.to_string_lossy().to_string()))
        .pool_threads(6)
        .build();
    let m = Arc::new(Monarch::new(cfg).unwrap());
    m.init().unwrap();
    let monarch_t =
        RealTrainer::new(RealBackend::Monarch(Arc::clone(&m)), &data, pipeline()).unwrap();

    // Epoch 1 triggers placement; drain it before epochs 2-3 so the
    // local-tier handoff is deterministic (on a loaded machine three tiny
    // epochs can otherwise outrun the copy pool entirely).
    let mut epochs = vec![monarch_t.run_epoch(0).unwrap()];
    m.wait_placement_idle();
    epochs.extend(monarch_t.run(2).unwrap());
    for (i, e) in epochs.iter().enumerate() {
        assert_eq!(e.fingerprint, baseline.fingerprint, "epoch {i} fingerprint");
        assert_eq!(e.bytes, baseline.bytes, "epoch {i} bytes");
    }
    m.wait_placement_idle();
    let stats = m.stats();
    // Across 3 epochs the local tier must dominate: at most one epoch's
    // worth of chunks (plus background fetches) hit the PFS.
    assert!(
        stats.tiers[0].reads > stats.tiers[1].reads,
        "local should dominate over 3 epochs: {stats:?}"
    );
    fs::remove_dir_all(&root).unwrap();
}

/// Partial fit on disk: quota is respected, no evictions, skipped files
/// stay on the PFS, and every byte is still correct.
#[test]
fn partial_fit_respects_quota_without_eviction() {
    let root = tmp("partial");
    let data = root.join("pfs");
    let spec = DatasetSpec::miniature(2 << 20, 256, 29);
    let ds = generate(&spec, &data).unwrap();
    let quota = ds.total_bytes * 2 / 5;

    let cfg = MonarchConfig::builder()
        .tier(
            TierConfig::posix("ssd", root.join("ssd").to_string_lossy().to_string())
                .with_capacity(quota),
        )
        .tier(TierConfig::posix("pfs", data.to_string_lossy().to_string()))
        .pool_threads(4)
        .build();
    let m = Arc::new(Monarch::new(cfg).unwrap());
    m.init().unwrap();
    let t = RealTrainer::new(RealBackend::Monarch(Arc::clone(&m)), &data, pipeline()).unwrap();

    let baseline = RealTrainer::new(
        RealBackend::Direct(monarch::core::driver::PosixDriver::new("pfs", &data).unwrap()),
        &data,
        pipeline(),
    )
    .unwrap()
    .run_epoch(0)
    .unwrap();

    for epoch in 0..3 {
        let e = t.run_epoch(epoch).unwrap();
        assert_eq!(e.fingerprint, baseline.fingerprint, "epoch {epoch}");
        m.wait_placement_idle();
        let used = m
            .hierarchy()
            .tier(0)
            .unwrap()
            .quota
            .as_ref()
            .unwrap()
            .used();
        assert!(used <= quota, "quota exceeded: {used} > {quota}");
    }
    let stats = m.stats();
    assert_eq!(stats.evictions, 0);
    assert!(
        stats.placement_skipped > 0,
        "some files must be left behind"
    );
    assert!(stats.copies_completed > 0, "some files must be placed");
    // On-disk usage of the cache dir also respects the quota.
    let cache_bytes: u64 = fs::read_dir(root.join("ssd"))
        .unwrap()
        .filter_map(|e| e.ok())
        .filter_map(|e| e.metadata().ok())
        .map(|md| md.len())
        .sum();
    assert!(
        cache_bytes <= quota,
        "on-disk {cache_bytes} > quota {quota}"
    );
    fs::remove_dir_all(&root).unwrap();
}

/// LRU-eviction ablation policy on a real hierarchy: middleware keeps
/// serving correct bytes while files churn in and out of the cache tier.
#[test]
fn lru_ablation_serves_correct_bytes_under_churn() {
    let root = tmp("lru");
    let data = root.join("pfs");
    let spec = DatasetSpec::miniature(1 << 20, 96, 31);
    let ds = generate(&spec, &data).unwrap();

    let cfg = MonarchConfig::builder()
        .tier(
            TierConfig::posix("ssd", root.join("ssd").to_string_lossy().to_string())
                .with_capacity(ds.total_bytes / 3),
        )
        .tier(TierConfig::posix("pfs", data.to_string_lossy().to_string()))
        .pool_threads(2)
        .policy(PolicyKind::LruEvict)
        .build();
    let m = Arc::new(Monarch::new(cfg).unwrap());
    m.init().unwrap();
    let t = RealTrainer::new(RealBackend::Monarch(Arc::clone(&m)), &data, pipeline()).unwrap();

    let baseline = RealTrainer::new(
        RealBackend::Direct(monarch::core::driver::PosixDriver::new("pfs", &data).unwrap()),
        &data,
        pipeline(),
    )
    .unwrap()
    .run_epoch(0)
    .unwrap();

    for epoch in 0..3 {
        let e = t.run_epoch(epoch).unwrap();
        assert_eq!(e.fingerprint, baseline.fingerprint, "epoch {epoch}");
        m.wait_placement_idle();
    }
    let stats = m.stats();
    assert!(
        stats.evictions > 0,
        "LRU under pressure must evict: {stats:?}"
    );
    fs::remove_dir_all(&root).unwrap();
}

/// Ephemerality (§III-A metadata container): a fresh middleware instance
/// over the same directories starts from a clean namespace — nothing from
/// the previous job leaks, and pre-existing cache-tier files are simply
/// overwritten on the next placement.
#[test]
fn namespace_is_ephemeral_across_instances() {
    let root = tmp("ephemeral");
    let data = root.join("pfs");
    let spec = DatasetSpec::miniature(512 << 10, 48, 41);
    let ds = generate(&spec, &data).unwrap();
    let mk = || {
        let cfg = MonarchConfig::builder()
            .tier(
                TierConfig::posix("ssd", root.join("ssd").to_string_lossy().to_string())
                    .with_capacity(ds.total_bytes),
            )
            .tier(TierConfig::posix("pfs", data.to_string_lossy().to_string()))
            .pool_threads(2)
            .build();
        let m = Monarch::new(cfg).unwrap();
        m.init().unwrap();
        m
    };

    let m1 = mk();
    let name = ds.shards[0]
        .file_name()
        .unwrap()
        .to_string_lossy()
        .to_string();
    let bytes1 = m1.read_full(&name).unwrap();
    m1.wait_placement_idle();
    assert_eq!(m1.metadata().get(&name).unwrap().tier, 0);
    drop(m1.shutdown());

    // Second job: namespace starts over; the file is "on the PFS" again.
    let m2 = mk();
    let info = m2.metadata().get(&name).unwrap();
    assert_eq!(info.tier, 1, "fresh instance must not remember placements");
    assert_eq!(info.reads, 0);
    let bytes2 = m2.read_full(&name).unwrap();
    assert_eq!(bytes1, bytes2);
    fs::remove_dir_all(&root).unwrap();
}
