//! Distributed peer-cache integration: two in-process MONARCH nodes over
//! loopback TCP sharing one PFS directory. A file staged on node A's fast
//! tier is served to node B without a second PFS read; a peer that does
//! not hold its shard yet — or whose listener has died mid-epoch — makes
//! node B degrade to its own PFS read instead of erroring.

use std::fs;
use std::path::{Path, PathBuf};

use monarch::core::cluster::ShardMap;
use monarch::core::config::{MonarchConfig, TierConfig};
use monarch::core::{ClusterConfig, Monarch};
use monarch::tfrecord::synth::{generate, DatasetSpec};

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("monarch-cluster-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn node_config(ssd: &Path, pfs: &Path, capacity: u64, cluster: ClusterConfig) -> MonarchConfig {
    MonarchConfig::builder()
        .tier(TierConfig::posix("ssd", ssd.to_string_lossy().to_string()).with_capacity(capacity))
        .tier(TierConfig::posix("pfs", pfs.to_string_lossy().to_string()))
        .pool_threads(2)
        .cluster(cluster)
        .build()
}

/// Reads served by the node's own PFS tier (the source, always last).
fn pfs_reads(m: &Monarch) -> u64 {
    m.stats().tiers.last().expect("at least one tier").reads
}

#[test]
fn peer_serves_staged_files_and_degrades_to_pfs() {
    let root = tmp("e2e");
    let data = root.join("pfs");
    let spec = DatasetSpec::miniature(2 << 20, 256, 21);
    let ds = generate(&spec, &data).unwrap();
    let names: Vec<String> = ds
        .shards
        .iter()
        .map(|s| s.file_name().unwrap().to_string_lossy().into_owned())
        .collect();

    // Both nodes must agree on the shard seed; pick one (deterministically)
    // that gives node 0 enough shards to stage and node 1 at least one, so
    // the scenario below cannot collapse into a single owner.
    let (seed, owned0) = (0u64..64)
        .find_map(|seed| {
            let map = ShardMap::new(2, seed);
            let owned0: Vec<String> = names
                .iter()
                .filter(|n| map.owner(n) == 0)
                .cloned()
                .collect();
            (owned0.len() >= 3 && owned0.len() < names.len()).then_some((seed, owned0))
        })
        .expect("some seed splits the shards across both nodes");

    // Node A: serves on an OS-assigned loopback port. Node 1's address is
    // a placeholder — A only stages its own shards and never dials out.
    let mut cluster_a = ClusterConfig::new(0, vec!["127.0.0.1:0".into(), "127.0.0.1:9".into()]);
    cluster_a.shard_seed = seed;
    let a = Monarch::new(node_config(
        &root.join("ssd-a"),
        &data,
        ds.total_bytes,
        cluster_a,
    ))
    .unwrap();
    a.init().unwrap();

    // Stage every node-0-owned shard but one on A's fast tier; the holdout
    // exercises the "peer does not hold the shard yet" degradation.
    let holdout = owned0.last().unwrap().clone();
    for name in &owned0[..owned0.len() - 1] {
        assert!(!a.read_full(name).unwrap().is_empty());
    }
    a.wait_placement_idle();
    let a_addr = a
        .cluster()
        .expect("node A is clustered")
        .server_addr()
        .expect("node A serves its shard")
        .to_string();

    // Node B: same membership (A's real bound address), same seed. No
    // connection pooling, so every fetch dials fresh — once A's listener
    // dies, the very next fetch sees the refusal instead of a warm socket.
    let mut cluster_b = ClusterConfig::new(1, vec![a_addr, "127.0.0.1:0".into()]);
    cluster_b.shard_seed = seed;
    cluster_b.pool_conns_per_peer = 0;
    let b = Monarch::new(node_config(
        &root.join("ssd-b"),
        &data,
        ds.total_bytes,
        cluster_b,
    ))
    .unwrap();
    b.init().unwrap();

    // A staged file is served peer-to-peer: byte-identical to the PFS
    // copy, no PFS read on B, peer counters tick.
    let before = pfs_reads(&b);
    let via_peer = b.read_full(&owned0[0]).unwrap();
    assert_eq!(via_peer, fs::read(data.join(&owned0[0])).unwrap());
    let s = b.stats();
    assert!(s.peer_hits >= 1, "expected a peer hit, got {s:?}");
    assert!(s.peer_bytes >= via_peer.len() as u64);
    assert_eq!(
        pfs_reads(&b),
        before,
        "a peer-served read must not touch the PFS"
    );

    // The holdout is peer-owned but not resident on A: B falls back to its
    // own PFS read and still gets the bytes.
    let fallbacks = b.stats().peer_fallbacks;
    let before = pfs_reads(&b);
    let via_pfs = b.read_full(&holdout).unwrap();
    assert_eq!(via_pfs, fs::read(data.join(&holdout)).unwrap());
    assert!(b.stats().peer_fallbacks > fallbacks);
    assert!(pfs_reads(&b) > before, "fallback must read the PFS");

    // Kill A's listener mid-epoch: reads of A-owned shards degrade to the
    // PFS — counted, never an error.
    b.wait_placement_idle();
    a.cluster().unwrap().stop_server();
    assert!(a.cluster().unwrap().server_addr().is_none());
    let fallbacks = b.stats().peer_fallbacks;
    let bytes = b.read_full(&owned0[1]).unwrap();
    assert_eq!(bytes, fs::read(data.join(&owned0[1])).unwrap());
    assert!(
        b.stats().peer_fallbacks > fallbacks,
        "a dead listener must degrade to the PFS"
    );

    // The roster snapshot carries the client-side counters.
    let snap = b.cluster_snapshot().expect("node B is clustered");
    assert_eq!(snap.node_id, 1);
    assert_eq!(snap.nodes.len(), 2);
    assert!(snap.peer_hits >= 1 && snap.peer_fallbacks >= 2);

    b.shutdown();
    a.shutdown();
    fs::remove_dir_all(&root).unwrap();
}
