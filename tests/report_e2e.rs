//! Acceptance tests for the workload observatory's epoch report, across
//! both drivers:
//!
//! - **Real** (tempdir, actual threads, wall clock): a plan-covered epoch
//!   with a held-back tail produces a report whose attribution buckets
//!   sum to the measured wall within 5%, with at least one hot file and
//!   the held-back files flagged as wasted prefetch.
//! - **Sim** (virtual time): a MONARCH run attaches the same report to
//!   its `RunReport`, per-epoch buckets sum to each epoch's virtual
//!   seconds, and the whole-run roll-up matches the total.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use monarch::core::config::{MonarchConfig, TierConfig};
use monarch::core::observe::{LedgerBuckets, ObserveReport};
use monarch::core::prefetch::AccessPlan;
use monarch::core::Monarch;
use monarch::dlpipe::config::{EnvConfig, MonarchSimConfig, PipelineConfig, Setup};
use monarch::dlpipe::geometry::DatasetGeom;
use monarch::dlpipe::models::ModelProfile;
use monarch::dlpipe::sim::SimTrainer;
use monarch::tfrecord::synth::{generate, DatasetSpec};

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("monarch-report-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn assert_buckets_sum_to_wall(buckets: &LedgerBuckets, wall_s: f64, what: &str) {
    let sum = buckets.sum_s();
    assert!(
        (sum - wall_s).abs() <= 0.05 * wall_s.max(1e-9),
        "{what}: bucket sum {sum} vs wall {wall_s} off by more than 5% ({buckets:?})"
    );
}

#[test]
fn real_epoch_report_attributes_wall_and_flags_waste() {
    let root = tmp("real");
    let data = root.join("pfs");
    let spec = DatasetSpec::miniature(768 << 10, 96, 11);
    let ds = generate(&spec, &data).unwrap();

    let cfg = MonarchConfig::builder()
        .tier(
            TierConfig::posix("ssd", root.join("ssd").to_string_lossy().to_string())
                .with_capacity(2 * ds.total_bytes),
        )
        .tier(TierConfig::posix("pfs", data.to_string_lossy().to_string()))
        .pool_threads(4)
        .prefetch_lookahead(16)
        .build();
    let m = Arc::new(Monarch::new(cfg).unwrap());
    m.init().unwrap();

    let mut files: Vec<String> = Vec::new();
    m.metadata()
        .for_each(|name, _| files.push(name.to_string()));
    files.sort();
    assert!(files.len() >= 4, "dataset too small: {}", files.len());

    // The plan covers everything; the foreground holds back a tail the
    // prefetcher will stage anyway — the report's wasted-prefetch list.
    let hold = 2usize;
    let read_set = &files[..files.len() - hold];
    let holdback = &files[files.len() - hold..];

    let started = Instant::now();
    m.submit_plan(&AccessPlan::new(files.clone()));
    let mut buf = vec![0u8; 16 << 10];
    for _epoch in 0..2 {
        for name in read_set {
            let mut off = 0u64;
            loop {
                let n = m.read(name, off, &mut buf).unwrap();
                if n == 0 {
                    break;
                }
                off += n as u64;
            }
        }
    }
    m.wait_placement_idle();
    let wall_s = started.elapsed().as_secs_f64();

    let snap = m.telemetry().snapshot();
    // top_k covers the whole namespace so the wasted list is not truncated.
    let report = ObserveReport::from_snapshot(&snap, wall_s, 1, files.len())
        .expect("default telemetry keeps the profiler on");

    assert!(report.reads > 0, "no reads profiled");
    assert_buckets_sum_to_wall(&report.ledger, wall_s, "real epoch");
    assert!(
        !report.top_hot.is_empty(),
        "an epoch of reads must produce hot files"
    );
    assert!(report.top_hot[0].accesses >= 2, "two epochs of reads");
    for name in holdback {
        assert!(
            report
                .wasted_prefetch
                .iter()
                .any(|w| &w.file == name && w.prefetched_bytes > 0),
            "held-back {name} missing from wasted list: {:?}",
            report.wasted_prefetch
        );
    }
    // The timeline saw the staging copies land.
    assert!(report.timeline_recorded > 0, "no residency transitions");
    drop(m);
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn sim_run_report_carries_per_epoch_and_total_attribution() {
    let model = ModelProfile {
        name: "tiny".into(),
        per_sample_step: 50e-6,
        gpu_fraction: 0.7,
        cpu_per_sample: 60e-6,
        batch_size: 128,
    };
    let run = SimTrainer::new(
        Setup::Monarch(MonarchSimConfig::with_prefetch(64)),
        DatasetGeom::miniature("mini", 16_384, 42),
        model,
        PipelineConfig::default().with_seed(1),
        EnvConfig::default(),
    )
    .run(2);

    let observe = run.observe.as_ref().expect("monarch sim attaches observe");
    assert!(observe.reads > 0, "sim profiled no reads");
    let total: f64 = run.epochs.iter().map(|e| e.seconds).sum();
    assert!((observe.wall_s - total).abs() < 1e-9);
    assert_buckets_sum_to_wall(&observe.ledger, total, "sim total");
    assert!(!observe.top_hot.is_empty(), "sim saw no hot files");
    assert!(observe.timeline_recorded > 0, "sim recorded no transitions");

    for e in &run.epochs {
        let b = e.observe.as_ref().expect("per-epoch attribution");
        assert_buckets_sum_to_wall(b, e.seconds, &format!("sim epoch {}", e.epoch));
    }
    // Epoch 1 pays the staging traffic; epoch 2 runs warm, so its
    // storage-attributed share must shrink.
    let storage = |b: &LedgerBuckets| b.sum_s() - b.compute_bound_s;
    let e1 = run.epochs[0].observe.as_ref().unwrap();
    let e2 = run.epochs[1].observe.as_ref().unwrap();
    assert!(
        storage(e2) < storage(e1),
        "warm epoch 2 ({:?}) should lose less time to storage than cold epoch 1 ({:?})",
        e2,
        e1
    );

    // A non-MONARCH setup carries no observe section at all.
    let vanilla = SimTrainer::new(
        Setup::VanillaLustre,
        DatasetGeom::miniature("mini", 16_384, 42),
        ModelProfile::lenet(),
        PipelineConfig::default().with_seed(1),
        EnvConfig::default(),
    )
    .run(1);
    assert!(vanilla.observe.is_none());
    assert!(vanilla.epochs[0].observe.is_none());
}
