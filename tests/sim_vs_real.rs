//! Cross-substrate validation: the discrete-event simulator and the real
//! thread-based trainer must agree on the *mechanical* quantities that do
//! not depend on timing — chunk-read counts, byte totals, placement
//! outcomes — when driven by the same dataset geometry.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use monarch::core::config::{MonarchConfig, TierConfig};
use monarch::core::Monarch;
use monarch::dlpipe::config::{EnvConfig, MonarchSimConfig, PipelineConfig, Setup};
use monarch::dlpipe::geometry::{DatasetGeom, ShardGeom};
use monarch::dlpipe::models::ModelProfile;
use monarch::dlpipe::real::{RealBackend, RealTrainer};
use monarch::dlpipe::sim::SimTrainer;
use monarch::tfrecord::synth::{generate, DatasetSpec};
use monarch::tfrecord::ShardIndex;

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("monarch-xval-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn tiny_model() -> ModelProfile {
    ModelProfile {
        name: "tiny".into(),
        per_sample_step: 10e-6,
        gpu_fraction: 0.7,
        cpu_per_sample: 10e-6,
        batch_size: 64,
    }
}

/// Measure the on-disk dataset into a simulator geometry.
fn geometry_of(dir: &PathBuf) -> DatasetGeom {
    let mut shards: Vec<(String, ShardGeom)> = fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| {
            let bytes = e.metadata().unwrap().len();
            let idx = ShardIndex::build(std::io::BufReader::new(fs::File::open(e.path()).unwrap()))
                .unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                ShardGeom {
                    bytes,
                    records: idx.len() as u64,
                },
            )
        })
        .collect();
    shards.sort_by(|a, b| a.0.cmp(&b.0));
    DatasetGeom::from_shards("measured", shards.into_iter().map(|(_, s)| s).collect())
}

#[test]
fn chunk_read_counts_agree_between_sim_and_real() {
    let root = tmp("counts");
    let data = root.join("pfs");
    let spec = DatasetSpec::miniature(1 << 20, 128, 51);
    generate(&spec, &data).unwrap();
    let geom = geometry_of(&data);
    let chunk = 16u64 << 10;

    // Real: vanilla pass over the directory.
    let real = RealTrainer::new(
        RealBackend::Direct(monarch::core::driver::PosixDriver::new("pfs", &data).unwrap()),
        &data,
        PipelineConfig {
            readers: 4,
            chunk_bytes: chunk,
            prefetch_batches: 2,
            seed: 9,
            trace_interval_secs: None,
            ..PipelineConfig::default()
        },
    )
    .unwrap()
    .run_epoch(0)
    .unwrap();

    // Sim: vanilla-lustre over the measured geometry.
    let sim = SimTrainer::new(
        Setup::VanillaLustre,
        geom.clone(),
        tiny_model(),
        PipelineConfig {
            readers: 4,
            chunk_bytes: chunk,
            prefetch_batches: 2,
            seed: 9,
            trace_interval_secs: None,
            ..PipelineConfig::default()
        },
        EnvConfig::default(),
    )
    .run(1);

    assert_eq!(real.chunk_reads, geom.chunk_reads_per_epoch(chunk));
    assert_eq!(
        sim.epochs[0].devices[sim.pfs_device].reads(),
        real.chunk_reads,
        "sim and real must issue identical chunk counts"
    );
    assert_eq!(
        sim.epochs[0].devices[sim.pfs_device].bytes_read(),
        real.bytes
    );
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn monarch_placement_outcomes_agree_between_sim_and_real() {
    let root = tmp("placement");
    let data = root.join("pfs");
    let spec = DatasetSpec::miniature(2 << 20, 128, 77);
    let ds = generate(&spec, &data).unwrap();
    let geom = geometry_of(&data);
    // Half-fit quota.
    let quota = ds.total_bytes / 2;

    // Real middleware, three epochs.
    let cfg = MonarchConfig::builder()
        .tier(
            TierConfig::posix("ssd", root.join("ssd").to_string_lossy().to_string())
                .with_capacity(quota),
        )
        .tier(TierConfig::posix("pfs", data.to_string_lossy().to_string()))
        .pool_threads(4)
        .build();
    let m = Arc::new(Monarch::new(cfg).unwrap());
    m.init().unwrap();
    let trainer = RealTrainer::new(
        RealBackend::Monarch(Arc::clone(&m)),
        &data,
        PipelineConfig {
            readers: 4,
            chunk_bytes: 16 << 10,
            prefetch_batches: 2,
            seed: 4,
            trace_interval_secs: None,
            ..PipelineConfig::default()
        },
    )
    .unwrap();
    for e in 0..3 {
        trainer.run_epoch(e).unwrap();
        m.wait_placement_idle();
    }
    let real_placed = m.stats().copies_completed;
    let real_skipped = m.stats().placement_skipped;
    let real_used = m
        .hierarchy()
        .tier(0)
        .unwrap()
        .quota
        .as_ref()
        .unwrap()
        .used();

    // Simulated middleware over the measured geometry, same quota.
    let sim = SimTrainer::new(
        Setup::Monarch(MonarchSimConfig::with_ssd_capacity(quota)),
        geom.clone(),
        tiny_model(),
        PipelineConfig {
            readers: 4,
            chunk_bytes: 16 << 10,
            prefetch_batches: 2,
            seed: 4,
            trace_interval_secs: None,
            ..PipelineConfig::default()
        },
        EnvConfig::default(),
    )
    .run(3);
    let sim_placed_bytes: u64 = sim
        .epochs
        .iter()
        .map(|e| e.devices[0].bytes_written())
        .sum();

    // Placement outcomes: both fill the quota to within one shard (the
    // shuffle order differs, so the exact shard set may differ).
    let max_shard = geom.shards.iter().map(|s| s.bytes).max().unwrap();
    assert!(
        real_used + max_shard >= quota,
        "real middleware left quota unfilled: {real_used} of {quota}"
    );
    assert!(
        sim_placed_bytes + max_shard >= quota && sim_placed_bytes <= quota,
        "sim placement out of range: {sim_placed_bytes} of {quota}"
    );
    assert!(real_placed > 0 && real_skipped > 0);
    fs::remove_dir_all(&root).unwrap();
}
