//! Acceptance test for causal request tracing: one real (tempdir) epoch
//! and one simulated (virtual-time) epoch each export Perfetto-loadable
//! Chrome JSON in which at least one foreground `driver_pread` served by
//! the PFS tier is flow-linked to a completed background `copy_exec`
//! that wrote the fast tier.

use std::collections::HashSet;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use monarch::core::config::{MonarchConfig, TelemetryConfig, TierConfig};
use monarch::core::Monarch;
use monarch::dlpipe::config::{EnvConfig, MonarchSimConfig, PipelineConfig, Setup};
use monarch::dlpipe::geometry::DatasetGeom;
use monarch::dlpipe::models::ModelProfile;
use monarch::dlpipe::real::{RealBackend, RealTrainer};
use monarch::dlpipe::sim::SimTrainer;
use monarch::tfrecord::synth::{generate, DatasetSpec};
use serde_json::Value;

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("monarch-trace-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

/// The cross-setup invariant: the export parses, and some PFS-tier
/// `driver_pread` carries a flow id that a completed `copy_exec`
/// finishes — with the copy's `copy_write` child on the fast tier and
/// both `s`/`f` flow events present so the arrow renders in Perfetto.
fn assert_flow_linked(json: &str, pfs_tier: &str, fast_tier: &str) {
    let v: Value = serde_json::from_str(json).expect("export must be valid JSON");
    assert_eq!(v["displayTimeUnit"], "ms");
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    let x = |name: &'static str| {
        events
            .iter()
            .filter(move |e| e["ph"] == "X" && e["name"] == name)
    };

    let pread_flows: HashSet<u64> = x("driver_pread")
        .filter(|e| e["args"]["tier"] == pfs_tier)
        .filter_map(|e| e["args"]["flow"].as_u64())
        .collect();
    assert!(
        !pread_flows.is_empty(),
        "no flow-carrying driver_pread on {pfs_tier}"
    );

    let mut linked = 0;
    for e in x("copy_exec") {
        let Some(flow) = e["args"]["flow"].as_u64() else {
            continue;
        };
        if !pread_flows.contains(&flow) || e["args"]["outcome"] != "completed" {
            continue;
        }
        let exec_id = e["args"]["span_id"].as_u64().expect("copy_exec span_id");
        let wrote_fast = x("copy_write").any(|w| {
            w["args"]["parent_id"].as_u64() == Some(exec_id) && w["args"]["tier"] == fast_tier
        });
        let starts = events
            .iter()
            .any(|ev| ev["ph"] == "s" && ev["id"].as_u64() == Some(flow));
        let finishes = events
            .iter()
            .any(|ev| ev["ph"] == "f" && ev["id"].as_u64() == Some(flow));
        if wrote_fast && starts && finishes {
            linked += 1;
        }
    }
    assert!(
        linked >= 1,
        "no {pfs_tier} read flow-linked to a completed {fast_tier} copy"
    );
}

/// Real epoch over a tempdir dataset: posix tiers, the real pipeline,
/// tracing on every read.
#[test]
fn real_epoch_exports_flow_linked_trace() {
    let root = tmp("real");
    let data = root.join("pfs");
    let spec = DatasetSpec::miniature(1 << 20, 96, 17);
    let ds = generate(&spec, &data).unwrap();

    let cfg = MonarchConfig::builder()
        .tier(
            TierConfig::posix("ssd", root.join("ssd").to_string_lossy().to_string())
                .with_capacity(ds.total_bytes),
        )
        .tier(TierConfig::posix("pfs", data.to_string_lossy().to_string()))
        .pool_threads(4)
        .telemetry(TelemetryConfig::with_tracing())
        .build();
    let m = Arc::new(Monarch::new(cfg).unwrap());
    m.init().unwrap();

    let trainer = RealTrainer::new(
        RealBackend::Monarch(Arc::clone(&m)),
        &data,
        PipelineConfig {
            readers: 4,
            chunk_bytes: 16 << 10,
            prefetch_batches: 2,
            seed: 11,
            trace_interval_secs: None,
            ..PipelineConfig::default()
        },
    )
    .unwrap();
    trainer.run_epoch(0).unwrap();
    m.wait_placement_idle();

    assert_flow_linked(&m.trace_json(), "pfs", "ssd");
    fs::remove_dir_all(&root).unwrap();
}

/// Simulated epoch: same span taxonomy and flow links, in virtual time,
/// exported through `RunReport::trace_json`.
#[test]
fn sim_epoch_exports_flow_linked_trace() {
    let model = ModelProfile {
        name: "tiny".into(),
        per_sample_step: 50e-6,
        gpu_fraction: 0.7,
        cpu_per_sample: 60e-6,
        batch_size: 128,
    };
    let r = SimTrainer::new(
        Setup::Monarch(MonarchSimConfig::with_tracing()),
        DatasetGeom::miniature("trace", 16_384, 42),
        model,
        PipelineConfig::default().with_seed(1),
        EnvConfig::default(),
    )
    .run(1);
    let json = r
        .trace_json
        .as_deref()
        .expect("traced sim run exports JSON");
    assert_flow_linked(json, "lustre", "ssd0");
}
