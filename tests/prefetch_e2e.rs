//! Acceptance test for the clairvoyant prefetch subsystem, across both
//! drivers:
//!
//! - **Real** (tempdir, actual threads): with a full-epoch access plan and
//!   a fast tier big enough for the dataset, epoch 1 through the prefetching
//!   middleware has a strictly higher fast-tier hit rate than the reactive
//!   middleware — and delivers byte-identical data.
//! - **Disabled** (`prefetch_lookahead = 0`): submitted plans are inert and
//!   behaviour is byte-identical to today's reactive path.
//! - **Sim** (virtual time): the `prefetch` mode's epoch 1 beats vanilla
//!   caching's epoch 1 and the reactive middleware's epoch 1.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use monarch::core::config::{MonarchConfig, TierConfig};
use monarch::core::prefetch::AccessPlan;
use monarch::core::Monarch;
use monarch::dlpipe::config::{EnvConfig, MonarchSimConfig, PipelineConfig, Setup};
use monarch::dlpipe::geometry::DatasetGeom;
use monarch::dlpipe::models::ModelProfile;
use monarch::dlpipe::real::{RealBackend, RealTrainer};
use monarch::dlpipe::sim::SimTrainer;
use monarch::tfrecord::synth::{generate, DatasetSpec};

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("monarch-pf-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn pipeline() -> PipelineConfig {
    PipelineConfig {
        readers: 4,
        chunk_bytes: 16 << 10,
        prefetch_batches: 2,
        seed: 7,
        trace_interval_secs: None,
        ..PipelineConfig::default()
    }
}

fn middleware(cache: &Path, data: &Path, cap: u64, lookahead: usize) -> Arc<Monarch> {
    let cfg = MonarchConfig::builder()
        .tier(TierConfig::posix("ssd", cache.to_string_lossy().to_string()).with_capacity(cap))
        .tier(TierConfig::posix("pfs", data.to_string_lossy().to_string()))
        .pool_threads(4)
        .prefetch_lookahead(lookahead)
        .build();
    let m = Arc::new(Monarch::new(cfg).unwrap());
    m.init().unwrap();
    m
}

/// Fraction of foreground read bytes served by the fast tier between two
/// stats snapshots.
fn local_hit_rate(
    before: &monarch::core::stats::StatsSnapshot,
    after: &monarch::core::stats::StatsSnapshot,
) -> f64 {
    let local = (after.tiers[0].bytes_read - before.tiers[0].bytes_read) as f64;
    let pfs = (after.tiers[1].bytes_read - before.tiers[1].bytes_read) as f64;
    local / (local + pfs)
}

#[test]
fn full_plan_prefetch_lifts_epoch_one_fast_tier_hit_rate() {
    let root = tmp("hitrate");
    let data = root.join("pfs");
    let spec = DatasetSpec::miniature(768 << 10, 96, 23);
    let ds = generate(&spec, &data).unwrap();

    // Reactive epoch 1: every shard's first read misses the fast tier.
    let reactive = middleware(&root.join("ssd-reactive"), &data, ds.total_bytes, 0);
    let rt = RealTrainer::new(
        RealBackend::Monarch(Arc::clone(&reactive)),
        &data,
        pipeline(),
    )
    .unwrap();
    let r_before = reactive.stats();
    let r_epoch = rt.run_epoch(0).unwrap();
    let r_rate = local_hit_rate(&r_before, &reactive.stats());
    assert!(
        r_rate < 1.0,
        "reactive epoch 1 cannot be all-local ({r_rate})"
    );

    // Clairvoyant epoch 1: submit the epoch's exact shuffle as the access
    // plan, let the full-plan prefetch stage it (capacity is sufficient),
    // then train. Every foreground read hits the fast tier.
    let pf = middleware(&root.join("ssd-pf"), &data, ds.total_bytes, 128);
    let pt = RealTrainer::new(RealBackend::Monarch(Arc::clone(&pf)), &data, pipeline()).unwrap();
    let plan = AccessPlan::new(pt.epoch_order(0));
    let admitted = pf.submit_plan(&plan);
    assert_eq!(admitted, pt.shards().len(), "every known shard admitted");
    pf.wait_placement_idle();
    let p_before = pf.stats();
    let p_epoch = pt.run_epoch(0).unwrap();
    let p_after = pf.stats();
    let p_rate = local_hit_rate(&p_before, &p_after);

    assert!(
        p_rate > r_rate,
        "prefetch epoch-1 hit rate {p_rate} not above reactive {r_rate}"
    );
    assert_eq!(
        p_after.prefetches_scheduled, admitted as u64,
        "full-plan prefetch stages every entry: {p_after:?}"
    );
    assert_eq!(
        p_after.prefetch_hits, admitted as u64,
        "every shard's first read is served by its staged copy: {p_after:?}"
    );
    assert_eq!(p_after.prefetch_wasted, 0, "everything staged was read");
    // Same data either way.
    assert_eq!(p_epoch.bytes, r_epoch.bytes);
    assert_eq!(p_epoch.fingerprint, r_epoch.fingerprint, "content mismatch");
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn disabled_prefetch_is_reactive_byte_for_byte() {
    let root = tmp("disabled");
    let data = root.join("pfs");
    let spec = DatasetSpec::miniature(256 << 10, 48, 5);
    let ds = generate(&spec, &data).unwrap();

    // Direct (no middleware) reference fingerprint.
    let direct = RealTrainer::new(
        RealBackend::Direct(monarch::core::driver::PosixDriver::new("pfs", &data).unwrap()),
        &data,
        pipeline(),
    )
    .unwrap();
    let want = direct.run_epoch(0).unwrap();

    // lookahead = 0: the plan is accepted but inert; placement stays
    // purely reactive and the delivered bytes are identical.
    let m = middleware(&root.join("ssd"), &data, ds.total_bytes, 0);
    let t = RealTrainer::new(RealBackend::Monarch(Arc::clone(&m)), &data, pipeline()).unwrap();
    let admitted = m.submit_plan(&AccessPlan::new(t.epoch_order(0)));
    assert_eq!(admitted, 0, "disabled prefetch admits nothing");
    let e = t.run_epoch(0).unwrap();
    m.wait_placement_idle();

    assert_eq!(e.bytes, want.bytes);
    assert_eq!(
        e.fingerprint, want.fingerprint,
        "disabled prefetch changed bytes"
    );
    let stats = m.stats();
    assert_eq!(stats.prefetches_scheduled, 0);
    assert_eq!(stats.prefetch_hits, 0);
    assert_eq!(stats.prefetch_promoted, 0);
    assert!(stats.copies_completed > 0, "reactive placement still runs");
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn sim_prefetch_epoch_one_beats_vanilla_caching() {
    let model = ModelProfile {
        name: "tiny".into(),
        per_sample_step: 50e-6,
        gpu_fraction: 0.7,
        cpu_per_sample: 60e-6,
        batch_size: 128,
    };
    let run = |setup: Setup| {
        SimTrainer::new(
            setup,
            DatasetGeom::miniature("mini", 16_384, 42),
            model.clone(),
            PipelineConfig::default().with_seed(1),
            EnvConfig::default(),
        )
        .run(1)
    };
    let cap = 4u64 << 30;
    let pf = run(Setup::Monarch(MonarchSimConfig::with_prefetch(64)));
    let reactive = run(Setup::Monarch(MonarchSimConfig::with_ssd_capacity(cap)));
    let caching = run(Setup::VanillaCaching);

    let t = pf.telemetry.as_ref().expect("monarch telemetry");
    assert!(t.stats.prefetch_hits > 0, "no staged copy served a read");
    assert!(
        pf.epochs[0].seconds < caching.epochs[0].seconds,
        "prefetch epoch 1 ({}) should beat vanilla-caching ({})",
        pf.epochs[0].seconds,
        caching.epochs[0].seconds
    );
    assert!(
        pf.epochs[0].seconds < reactive.epochs[0].seconds,
        "prefetch epoch 1 ({}) should beat reactive monarch ({})",
        pf.epochs[0].seconds,
        reactive.epochs[0].seconds
    );
}
