//! Chaos end-to-end: a real TFRecord dataset on a real tempdir hierarchy
//! whose fast tier fails mid-epoch. Every read must keep returning correct
//! bytes (degraded service from the PFS, never an error), the breaker must
//! quarantine the tier, and a half-open probe must re-admit it once the
//! outage clears.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use monarch::core::driver::{FlakyDriver, PosixDriver, StorageDriver};
use monarch::core::health::HealthConfig;
use monarch::core::hierarchy::StorageHierarchy;
use monarch::core::middleware::Monarch;
use monarch::core::MonarchBuilder;
use monarch::tfrecord::synth::{generate, DatasetSpec};

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("monarch-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

/// Dataset + middleware with the local tier wrapped in a [`FlakyDriver`]:
/// returns the facade, the shard names, their expected bytes, and the
/// shared outage switch.
fn chaos_rig(
    root: &Path,
    capacity: u64,
) -> (
    Monarch,
    Vec<String>,
    Vec<Vec<u8>>,
    Arc<std::sync::atomic::AtomicBool>,
) {
    let data = root.join("pfs");
    let spec = DatasetSpec::miniature(1 << 20, 128, 21);
    let ds = generate(&spec, &data).unwrap();
    let flaky = Arc::new(FlakyDriver::new(
        PosixDriver::new("ssd", root.join("ssd")).unwrap(),
    ));
    let switch = flaky.outage_switch();
    let cap = if capacity == 0 {
        ds.total_bytes
    } else {
        capacity
    };
    let hierarchy = StorageHierarchy::new(vec![
        (
            "ssd".into(),
            Arc::clone(&flaky) as Arc<dyn StorageDriver>,
            Some(cap),
        ),
        (
            "pfs".into(),
            Arc::new(PosixDriver::new("pfs", &data).unwrap()),
            None,
        ),
    ])
    .unwrap();
    // Short probe cooldown so recovery happens within the test.
    hierarchy.health().set_config(HealthConfig {
        probe_cooldown_us: 1_000,
        ..HealthConfig::default()
    });
    let m = MonarchBuilder::new()
        .hierarchy(hierarchy)
        .pool_threads(4)
        .build()
        .unwrap();
    m.init().unwrap();
    let names: Vec<String> = ds
        .shards
        .iter()
        .map(|s| s.file_name().unwrap().to_string_lossy().into_owned())
        .collect();
    let bytes: Vec<Vec<u8>> = ds.shards.iter().map(|p| fs::read(p).unwrap()).collect();
    (m, names, bytes, switch)
}

#[test]
fn mid_epoch_outage_serves_every_read_and_readmits_the_tier() {
    let root = tmp("outage");
    let (m, names, expected, switch) = chaos_rig(&root, 0);

    // Epoch 1: demand placement stages everything onto the SSD tier.
    for (name, want) in names.iter().zip(&expected) {
        assert_eq!(&m.read_full(name).unwrap(), want);
    }
    m.wait_placement_idle();
    let placed = m.metadata().residency_histogram(2)[0];
    assert_eq!(placed as usize, names.len(), "epoch 1 placed every shard");

    // Epoch 2: the SSD dies over the middle half of the epoch. Zero read
    // errors allowed — degraded reads fall back to the PFS.
    let n = names.len();
    for (i, (name, want)) in names.iter().zip(&expected).enumerate() {
        if i == n / 4 {
            switch.store(true, Ordering::Release);
        }
        if i == (3 * n) / 4 {
            switch.store(false, Ordering::Release);
            // Let the re-armed probe cooldown lapse so recovery can
            // happen inside this epoch.
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(
            &m.read_full(name).unwrap(),
            want,
            "read {i} must survive the outage"
        );
    }
    let s = m.stats();
    assert!(s.tier_quarantines >= 1, "breaker tripped: {s:?}");
    assert!(s.degraded_reads > 0, "outage reads fell back: {s:?}");
    assert!(s.read_retries > 0, "transient faults retried first: {s:?}");
    assert!(s.tier_recoveries >= 1, "probe re-admitted the tier: {s:?}");
    let h = m.hierarchy().health().snapshot();
    assert!(!h.degraded, "tier re-admitted after the outage: {h:?}");
    assert_eq!(h.tiers[0].state, "closed");
    assert!(h.tiers[0].quarantines >= 1);
    assert!(h.tiers[0].recoveries >= 1);

    // Epoch 3: fully local again, no degraded service left.
    let before = m.stats();
    for (name, want) in names.iter().zip(&expected) {
        assert_eq!(&m.read_full(name).unwrap(), want);
    }
    let after = m.stats();
    assert_eq!(
        after.degraded_reads, before.degraded_reads,
        "no degraded reads after re-admission"
    );
    assert_eq!(
        after.tiers[0].reads - before.tiers[0].reads,
        n as u64,
        "every post-recovery read is local"
    );
    m.shutdown();
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn copies_requeue_over_an_outage_and_land_after_recovery() {
    let root = tmp("requeue");
    let (m, names, expected, switch) = chaos_rig(&root, 0);

    // Stage the first shard so the tier has a resident file (the read
    // path's half-open probe runs against resident files).
    assert_eq!(&m.read_full(&names[0]).unwrap(), &expected[0]);
    m.wait_placement_idle();
    assert_eq!(m.stats().copies_completed, 1);

    // Outage: reading a second shard still succeeds (served from the
    // PFS), but its write-back cannot land — the copy is requeued, not
    // pinned, and the tier quarantines from the install failures.
    switch.store(true, Ordering::Release);
    assert_eq!(&m.read_full(&names[1]).unwrap(), &expected[1]);
    m.wait_placement_idle();
    let s = m.stats();
    assert!(
        s.copy_requeues + s.copies_failed >= 1,
        "write-back could not land: {s:?}"
    );
    assert_eq!(
        s.copies_completed, 1,
        "no new copy landed during the outage"
    );
    assert!(m.hierarchy().health().snapshot().degraded);

    // Recovery: a read of the resident shard wins the probe and
    // re-admits the tier; the requeued shard then places on its next
    // touch.
    switch.store(false, Ordering::Release);
    std::thread::sleep(Duration::from_millis(10));
    assert_eq!(&m.read_full(&names[0]).unwrap(), &expected[0]);
    assert!(!m.hierarchy().health().snapshot().degraded);
    assert_eq!(&m.read_full(&names[1]).unwrap(), &expected[1]);
    m.wait_placement_idle();
    assert_eq!(m.metadata().get(&names[1]).unwrap().tier, 0, "re-admitted");
    assert!(m.stats().copies_completed >= 2);
    m.shutdown();
    fs::remove_dir_all(&root).unwrap();
}
