//! The "6 lines of TensorFlow" integration (paper §III-C), demonstrated
//! against the C ABI exactly as a DL framework's POSIX storage driver
//! would use it: initialise from a JSON config, replace `pread` with
//! `monarch_read`, query stats, shut down.
//!
//! Run with: `cargo run --release --example framework_shim`

use std::ffi::CString;

use monarch::core::config::{MonarchConfig, TierConfig};
use monarch::tfrecord::synth::{generate, DatasetSpec};
use monarch_ffi::{
    monarch_file_count, monarch_init_json, monarch_read, monarch_shutdown, monarch_stats_json,
    monarch_string_free, monarch_wait_idle,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("monarch-shim-{}", std::process::id()));
    let pfs_dir = root.join("pfs");
    let _ = std::fs::remove_dir_all(&root);
    let ds = generate(&DatasetSpec::miniature(2 << 20, 128, 3), &pfs_dir)?;

    // What the framework's config file would contain.
    let cfg = MonarchConfig::builder()
        .tier(
            TierConfig::posix("ssd", root.join("ssd").to_string_lossy().to_string())
                .with_capacity(ds.total_bytes),
        )
        .tier(TierConfig::posix(
            "pfs",
            pfs_dir.to_string_lossy().to_string(),
        ))
        .pool_threads(6)
        .build();
    let json = CString::new(cfg.to_json())?;

    // --- the six lines a framework driver adds -------------------------
    unsafe {
        let m = monarch_init_json(json.as_ptr()); // 1: instantiate
        assert!(!m.is_null());
        println!("namespace: {} files", monarch_file_count(m)); // 2: (sanity)

        let mut buf = vec![0u8; 256 << 10];
        for epoch in 1..=2 {
            for shard in &ds.shards {
                let name = CString::new(shard.file_name().unwrap().to_string_lossy().as_bytes())?;
                let mut offset = 0u64;
                loop {
                    // 3: pread(fd, buf, len, off) → monarch_read(m, name, off, buf, len)
                    let n = monarch_read(m, name.as_ptr(), offset, buf.as_mut_ptr(), buf.len());
                    assert!(n >= 0, "monarch_read failed: {n}");
                    if n == 0 {
                        break;
                    }
                    offset += n as u64;
                }
            }
            monarch_wait_idle(m); // 4: drain background copies (teardown only)
            let stats = monarch_stats_json(m); // 5: observability
            let s = std::ffi::CStr::from_ptr(stats).to_str()?.to_string();
            monarch_string_free(stats);
            println!("epoch {epoch} stats: {s}");
        }
        monarch_shutdown(m); // 6: teardown
    }
    // --------------------------------------------------------------------

    std::fs::remove_dir_all(&root)?;
    Ok(())
}
