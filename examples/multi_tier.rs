//! Multi-level hierarchy (paper §VI, "consider more storage layers"):
//! RAM over SSD over PFS on a real file system, with the paper's
//! first-fit placement filling the fastest tier first.
//!
//! Run with: `cargo run --release --example multi_tier`

use std::sync::Arc;

use monarch::core::config::{MonarchConfig, TierConfig};
use monarch::core::Monarch;
use monarch::tfrecord::synth::{generate, DatasetSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("monarch-tiers-{}", std::process::id()));
    let pfs_dir = root.join("pfs");
    let ssd_dir = root.join("ssd");
    let _ = std::fs::remove_dir_all(&root);

    let spec = DatasetSpec::miniature(6 << 20, 384, 23);
    let ds = generate(&spec, &pfs_dir)?;
    println!(
        "dataset {} KiB in {} shards",
        ds.total_bytes >> 10,
        ds.shards.len()
    );

    // Three levels: a small in-memory tier, a medium SSD tier, the PFS.
    let ram_cap = ds.total_bytes / 4;
    let ssd_cap = ds.total_bytes / 2;
    let cfg = MonarchConfig::builder()
        .tier(TierConfig::mem("ram").with_capacity(ram_cap))
        .tier(
            TierConfig::posix("ssd", ssd_dir.to_string_lossy().to_string()).with_capacity(ssd_cap),
        )
        .tier(TierConfig::posix(
            "pfs",
            pfs_dir.to_string_lossy().to_string(),
        ))
        .pool_threads(4)
        .build();
    let monarch = Arc::new(Monarch::new(cfg)?);
    monarch.init()?;
    println!(
        "hierarchy: ram {} KiB / ssd {} KiB / pfs (source), {} levels",
        ram_cap >> 10,
        ssd_cap >> 10,
        monarch.hierarchy().levels()
    );

    // Stream the dataset once to trigger placement.
    let mut buf = vec![0u8; 64 << 10];
    for shard in &ds.shards {
        let name = shard.file_name().unwrap().to_string_lossy();
        let size = monarch.file_size(&name)?;
        let mut offset = 0;
        while offset < size {
            offset += monarch.read(&name, offset, &mut buf)? as u64;
        }
    }
    monarch.wait_placement_idle();

    let hist = monarch.metadata().residency_histogram(3);
    println!(
        "residency after one pass: ram={} ssd={} pfs={}",
        hist[0], hist[1], hist[2]
    );
    assert!(hist[0] > 0, "fastest tier must fill first (first-fit)");
    assert!(hist[1] > 0, "overflow goes to the SSD tier");
    assert!(hist[2] > 0, "the rest stays on the PFS");

    // The RAM tier must be filled before the SSD tier received anything:
    // verify quota exhaustion ordering.
    let ram_quota = monarch.hierarchy().tier(0)?.quota.as_ref().unwrap();
    println!(
        "ram quota used {}/{} KiB; ssd used {} KiB",
        ram_quota.used() >> 10,
        ram_quota.capacity() >> 10,
        monarch.hierarchy().tier(1)?.quota.as_ref().unwrap().used() >> 10
    );
    let smallest_shard = ds
        .shards
        .iter()
        .filter_map(|p| std::fs::metadata(p).ok().map(|m| m.len()))
        .min()
        .unwrap_or(0);
    assert!(
        ram_quota.free() < smallest_shard,
        "ram should have no room for another shard before ssd fills"
    );

    // Second pass: everything placed is served from fast tiers.
    let before = monarch.stats();
    for shard in &ds.shards {
        let name = shard.file_name().unwrap().to_string_lossy();
        let size = monarch.file_size(&name)?;
        let mut offset = 0;
        while offset < size {
            offset += monarch.read(&name, offset, &mut buf)? as u64;
        }
    }
    let after = monarch.stats();
    println!(
        "second pass reads: ram {} / ssd {} / pfs {}",
        after.tiers[0].reads - before.tiers[0].reads,
        after.tiers[1].reads - before.tiers[1].reads,
        after.tiers[2].reads - before.tiers[2].reads,
    );
    std::fs::remove_dir_all(&root)?;
    Ok(())
}
