//! Reproduce the paper's headline experiment in simulation: LeNet over
//! the 200 GiB ImageNet-1k variant that only partially fits the node's
//! 115 GiB SSD (Fig. 4), comparing vanilla-lustre against MONARCH.
//!
//! Run with: `cargo run --release --example imagenet_sim`

use monarch::dlpipe::config::{EnvConfig, MonarchSimConfig, PipelineConfig, Setup};
use monarch::dlpipe::geometry::DatasetGeom;
use monarch::dlpipe::models::ModelProfile;
use monarch::dlpipe::sim::SimTrainer;

fn main() {
    let geom = DatasetGeom::imagenet_200g();
    println!(
        "dataset: {} — {} shards, {} records, {:.1} GiB",
        geom.name,
        geom.num_shards(),
        geom.total_records(),
        geom.total_bytes() as f64 / (1u64 << 30) as f64
    );

    let model = ModelProfile::lenet();
    for setup in [
        Setup::VanillaLustre,
        Setup::Monarch(MonarchSimConfig::paper_default()),
    ] {
        let label = setup.label();
        let report = SimTrainer::new(
            setup,
            geom.clone(),
            model.clone(),
            PipelineConfig::default(),
            EnvConfig::default(),
        )
        .run(3);
        println!("\n=== {label} ===");
        if report.metadata_init_seconds > 0.0 {
            println!("metadata init: {:.1}s", report.metadata_init_seconds);
        }
        for e in &report.epochs {
            println!(
                "epoch {}: {:6.0}s  PFS ops {:>7}  gpu {:2.0}%  cpu {:2.0}%",
                e.epoch + 1,
                e.seconds,
                e.devices[report.pfs_device].data_ops(),
                e.gpu_util * 100.0,
                e.cpu_util * 100.0
            );
        }
        println!(
            "total: {:.0}s, PFS ops {} (paper: vanilla 2842s, monarch 2155s; ~360k ops/epoch residual)",
            report.total_seconds(),
            report.pfs_ops()
        );
    }
}
