//! The policy ablation of DESIGN §11: every composed policy triple on
//! the congested-PFS partial-cache scenario — fast tier at 50% of the
//! dataset, clairvoyant lookahead 64, three epochs, seed 1. The paper's
//! no-eviction first-fit strands half the shards on the slow PFS
//! forever; eviction-capable policies recycle the quota behind the
//! access plan and win on wall time. Reproduces the `sim_policy/*`
//! entries of `BENCH_sim_epoch.json` (plus the selectors the perf gate
//! does not pin) and the EXPERIMENTS.md ablation table.
//!
//! Run with: `cargo run --release --example policy_ablation`

use monarch::core::config::PolicyKind;
use monarch::dlpipe::config::{EnvConfig, MonarchSimConfig, PipelineConfig, Setup};
use monarch::dlpipe::geometry::DatasetGeom;
use monarch::dlpipe::models::ModelProfile;
use monarch::dlpipe::sim::SimTrainer;

fn sweep(title: &str, pipeline: &PipelineConfig) {
    let geom = DatasetGeom::miniature("policy-bench", 16_384, 42);
    let cap = geom.total_bytes() / 2;
    println!("{title}");
    println!(
        "{:<12} {:>8}  {:<20} {:>9} {:>8}",
        "policy", "total", "epochs (s)", "evicted", "pfs ops"
    );
    for kind in PolicyKind::all() {
        let r = SimTrainer::new(
            Setup::Monarch(MonarchSimConfig::policy_ablation(kind, cap)),
            geom.clone(),
            ModelProfile::lenet(),
            pipeline.clone(),
            EnvConfig::congested_pfs(),
        )
        .run(3);
        let t = r.telemetry.as_ref().expect("monarch attaches telemetry");
        let epochs: Vec<String> = r
            .epochs
            .iter()
            .map(|e| format!("{:.1}", e.seconds))
            .collect();
        println!(
            "{:<12} {:>7.1}s  {:<20} {:>9} {:>8}",
            kind.as_str(),
            r.total_seconds(),
            epochs.join(" / "),
            t.stats.evictions,
            r.pfs_ops(),
        );
    }
}

fn main() {
    let geom = DatasetGeom::miniature("policy-bench", 16_384, 42);
    println!(
        "dataset {:.1} GiB across {} shards; fast-tier quota 50%; congested PFS; lookahead 64\n",
        geom.total_bytes() as f64 / f64::from(1u32 << 30),
        geom.num_shards(),
    );
    sweep(
        "partial cache — uniform one-pass epochs:",
        &PipelineConfig::default().with_seed(1),
    );
    println!();
    sweep(
        "two-job contention — first 4 shards re-read 4 extra times per epoch:",
        &PipelineConfig {
            hot_shards: 4,
            hot_replays: 4,
            ..PipelineConfig::default().with_seed(1)
        },
    );
}
