//! Quickstart: put MONARCH between a reader and a two-tier storage
//! hierarchy on your own machine.
//!
//! This example stages a small synthetic TFRecord dataset in a temporary
//! "PFS" directory, mounts a capacity-limited "SSD" cache directory above
//! it, and reads the dataset twice — printing where the bytes came from
//! each time.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use monarch::core::config::{MonarchConfig, TierConfig};
use monarch::core::Monarch;
use monarch::tfrecord::synth::{generate, DatasetSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("monarch-quickstart-{}", std::process::id()));
    let pfs_dir = root.join("pfs");
    let ssd_dir = root.join("ssd");
    let _ = std::fs::remove_dir_all(&root);

    // 1. Stage a ~4 MiB synthetic ImageNet-style dataset on the "PFS".
    let spec = DatasetSpec::miniature(4 << 20, 256, 7);
    let ds = generate(&spec, &pfs_dir)?;
    println!(
        "staged {} records in {} shards ({} KiB) under {}",
        ds.total_records,
        ds.shards.len(),
        ds.total_bytes >> 10,
        pfs_dir.display()
    );

    // 2. Configure MONARCH: SSD tier (capacity-limited) above the PFS.
    let cfg = MonarchConfig::builder()
        .tier(
            TierConfig::posix("ssd", ssd_dir.to_string_lossy().to_string())
                .with_capacity(ds.total_bytes), // full fit
        )
        .tier(TierConfig::posix(
            "pfs",
            pfs_dir.to_string_lossy().to_string(),
        ))
        .pool_threads(6)
        .build();
    let monarch = Arc::new(Monarch::new(cfg)?);
    let report = monarch.init()?;
    println!(
        "namespace initialised: {} files, {} KiB, {:?}",
        report.files,
        report.bytes >> 10,
        report.elapsed
    );

    // 3. Epoch 1: read every shard in 64 KiB chunks (as a DL framework
    //    would); MONARCH serves from the PFS and places in the background.
    let mut buf = vec![0u8; 64 << 10];
    for epoch in 1..=2 {
        for shard in &ds.shards {
            let name = shard.file_name().unwrap().to_string_lossy();
            let size = monarch.file_size(&name)?;
            let mut offset = 0;
            while offset < size {
                let n = monarch.read(&name, offset, &mut buf)?;
                offset += n as u64;
            }
        }
        monarch.wait_placement_idle();
        let stats = monarch.stats();
        println!(
            "epoch {epoch}: ssd reads={:<4} pfs reads={:<4} copies done={} (hit ratio {:.0}%)",
            stats.tiers[0].reads,
            stats.tiers[1].reads,
            stats.copies_completed,
            stats.local_hit_ratio() * 100.0
        );
    }

    let final_stats = monarch.stats();
    assert!(
        final_stats.local_hit_ratio() > 0.4,
        "second epoch should hit the SSD"
    );
    println!("done — epoch 2 was served from the local tier.");
    std::fs::remove_dir_all(&root)?;
    Ok(())
}
