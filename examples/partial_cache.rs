//! Partial-fit caching on a real file system: the scenario TensorFlow's
//! `Dataset.cache()` cannot handle (paper §II summary) but MONARCH can —
//! the local tier holds only half the dataset, and MONARCH fills it
//! first-fit, leaving the rest on the "PFS" with **no eviction churn**.
//!
//! Run with: `cargo run --release --example partial_cache`

use std::sync::Arc;

use monarch::core::config::{MonarchConfig, TierConfig};
use monarch::core::Monarch;
use monarch::dlpipe::config::PipelineConfig;
use monarch::dlpipe::real::{RealBackend, RealTrainer};
use monarch::tfrecord::synth::{generate, DatasetSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("monarch-partial-{}", std::process::id()));
    let pfs_dir = root.join("pfs");
    let ssd_dir = root.join("ssd");
    let _ = std::fs::remove_dir_all(&root);

    let spec = DatasetSpec::miniature(8 << 20, 512, 11);
    let ds = generate(&spec, &pfs_dir)?;
    let half = ds.total_bytes / 2;
    println!(
        "dataset {} KiB across {} shards; local tier quota {} KiB (50%)",
        ds.total_bytes >> 10,
        ds.shards.len(),
        half >> 10
    );

    let cfg = MonarchConfig::builder()
        .tier(TierConfig::posix("ssd", ssd_dir.to_string_lossy().to_string()).with_capacity(half))
        .tier(TierConfig::posix(
            "pfs",
            pfs_dir.to_string_lossy().to_string(),
        ))
        .pool_threads(4)
        .build();
    let monarch = Arc::new(Monarch::new(cfg)?);
    monarch.init()?;

    let trainer = RealTrainer::new(
        RealBackend::Monarch(Arc::clone(&monarch)),
        &pfs_dir,
        PipelineConfig {
            readers: 4,
            chunk_bytes: 32 << 10,
            prefetch_batches: 2,
            seed: 3,
            trace_interval_secs: None,
            ..PipelineConfig::default()
        },
    )?;

    for epoch in 1..=3 {
        let before = monarch.stats();
        let e = trainer.run_epoch(epoch - 1)?;
        monarch.wait_placement_idle();
        let after = monarch.stats();
        println!(
            "epoch {epoch}: {:5.2}s wall, {} chunk reads — local {:>4} / pfs {:>4}, evictions {}",
            e.seconds,
            e.chunk_reads,
            after.tiers[0].reads - before.tiers[0].reads,
            after.tiers[1].reads - before.tiers[1].reads,
            after.evictions
        );
    }

    let stats = monarch.stats();
    let hist = monarch.metadata().residency_histogram(2);
    println!(
        "\nplacements: {} completed, {} skipped (no room), residency ssd/pfs = {}/{}",
        stats.copies_completed, stats.placement_skipped, hist[0], hist[1]
    );
    assert_eq!(stats.evictions, 0, "FirstFit never evicts");
    assert!(
        stats.placement_skipped > 0,
        "half the dataset must stay on the PFS"
    );
    println!("no evictions, stable partial placement — as designed (§III-A).");
    std::fs::remove_dir_all(&root)?;
    Ok(())
}
