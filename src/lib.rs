//! # MONARCH — hierarchical storage management for deep learning frameworks
//!
//! Facade crate for the MONARCH reproduction (Dantas et al., IEEE CLUSTER
//! 2021). It re-exports the workspace crates so that downstream users can
//! depend on a single package:
//!
//! - [`core`] — the middleware itself: storage hierarchy, placement handler,
//!   metadata container, background copy pool, and the [`core::Monarch`]
//!   facade that intercepts framework reads.
//! - [`sim`] — the discrete-event storage simulator used to reproduce the
//!   paper's Frontera/Lustre environment (PFS, local SSD, interference).
//! - [`tfrecord`] — the TFRecord on-disk format and a synthetic
//!   ImageNet-style dataset generator.
//! - [`dlpipe`] — the TensorFlow-like input pipeline, model compute profiles,
//!   training drivers (real and simulated), and the paper's four setups.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.

pub use dlpipe;
pub use monarch_core as core;
pub use simfs as sim;
pub use tfrecord;
