#!/usr/bin/env bash
# Repository-wide quality gate: formatting, lints (warnings promoted to
# errors), and the full test suite. Run before pushing.
#
#   scripts/check.sh            # everything
#   scripts/check.sh fmt        # just one stage: fmt | clippy | test
set -euo pipefail
cd "$(dirname "$0")/.."

stage="${1:-all}"

run_fmt() {
    echo "==> cargo fmt --all --check"
    cargo fmt --all --check
}

run_clippy() {
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
}

run_test() {
    echo "==> cargo test --workspace -q"
    cargo test --workspace -q
}

case "$stage" in
    fmt) run_fmt ;;
    clippy) run_clippy ;;
    test) run_test ;;
    all)
        run_fmt
        run_clippy
        run_test
        ;;
    *)
        echo "usage: scripts/check.sh [fmt|clippy|test|all]" >&2
        exit 2
        ;;
esac

echo "OK"
