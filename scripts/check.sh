#!/usr/bin/env bash
# Repository-wide quality gate: formatting, lints (warnings promoted to
# errors), and the full test suite. Run before pushing.
#
#   scripts/check.sh            # everything
#   scripts/check.sh fmt        # one stage: fmt | clippy | size | test | trace | prefetch | policy | report | cluster | chaos | perf | serve
set -euo pipefail
cd "$(dirname "$0")/.."

stage="${1:-all}"

run_fmt() {
    echo "==> cargo fmt --all --check"
    cargo fmt --all --check
}

# The TransferEngine refactor's structural gate: the middleware must stay
# a thin read-path facade. If it creeps back toward the pre-refactor
# monolith, move the new code into `transfer.rs` (copy/staging machinery)
# or `builder.rs` (assembly) instead of raising the limit.
run_size() {
    local limit=900
    local file="crates/monarch-core/src/middleware.rs"
    local lines
    lines=$(wc -l < "$file")
    echo "==> middleware facade size: $lines lines (limit $limit)"
    if [ "$lines" -gt "$limit" ]; then
        echo "size gate: $file has $lines lines > $limit" >&2
        exit 1
    fi
}

run_clippy() {
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
}

run_test() {
    echo "==> cargo test --workspace -q"
    cargo test --workspace -q
}

# Tracing end to end: the focused test targets, then a CLI smoke run that
# generates a dataset, records one traced window, and checks the export
# is valid JSON with flow-linked copy spans.
run_trace() {
    echo "==> cargo test -p monarch-core --test trace -q"
    cargo test -p monarch-core --test trace -q
    echo "==> cargo test -p monarch --test trace_e2e -q"
    cargo test -p monarch --test trace_e2e -q

    echo "==> monarch trace smoke run"
    local tmp
    tmp="$(mktemp -d)"
    # shellcheck disable=SC2064  # expand $tmp now, not at exit
    trap "rm -rf '$tmp'" EXIT
    cargo run -q -p monarch-cli -- gen-dataset \
        --dir "$tmp/pfs" --bytes $((8 << 20)) --samples 256 --seed 7
    cat > "$tmp/cfg.json" <<EOF
{
  "tiers": [
    {"name": "ssd", "backend": {"posix": {"path": "$tmp/ssd"}}, "capacity": 1073741824},
    {"name": "pfs", "backend": {"posix": {"path": "$tmp/pfs"}}}
  ],
  "pool_threads": 4
}
EOF
    cargo run -q -p monarch-cli -- trace \
        --config "$tmp/cfg.json" --data "$tmp/pfs" --out "$tmp/trace.json" \
        --duration 1
    python3 -m json.tool "$tmp/trace.json" > /dev/null
    for needle in '"driver_pread"' '"copy_exec"' '"ph":"s"' '"ph":"f"'; do
        grep -q "$needle" "$tmp/trace.json" \
            || { echo "trace smoke: missing $needle" >&2; exit 1; }
    done
    rm -rf "$tmp"
    trap - EXIT
}

# Clairvoyant prefetch end to end: the focused test targets (window
# invariants + cross-driver acceptance), then a CLI smoke run where a
# full-plan `run --prefetch` epoch must report staged copies serving
# reads.
run_prefetch() {
    echo "==> cargo test -p monarch-core --test proptests -q"
    cargo test -p monarch-core --test proptests -q
    echo "==> cargo test -p monarch --test prefetch_e2e -q"
    cargo test -p monarch --test prefetch_e2e -q

    echo "==> monarch run --prefetch smoke"
    local tmp
    tmp="$(mktemp -d)"
    # shellcheck disable=SC2064  # expand $tmp now, not at exit
    trap "rm -rf '$tmp'" EXIT
    cargo run -q -p monarch-cli -- gen-dataset \
        --dir "$tmp/pfs" --bytes $((8 << 20)) --samples 256 --seed 7
    cat > "$tmp/cfg.json" <<EOF
{
  "tiers": [
    {"name": "ssd", "backend": {"posix": {"path": "$tmp/ssd"}}, "capacity": 1073741824},
    {"name": "pfs", "backend": {"posix": {"path": "$tmp/pfs"}}}
  ],
  "pool_threads": 4
}
EOF
    cargo run -q -p monarch-cli -- run \
        --config "$tmp/cfg.json" --data "$tmp/pfs" --epochs 2 --prefetch 64 \
        | tee "$tmp/run.out"
    # Epoch 1 must stage copies; some epoch must record plan hits (on a
    # tiny local-FS dataset readers can outrun epoch-1 staging — the
    # promoted copies then serve epoch 2's planned reads).
    grep -Eq 'prefetch: [1-9][0-9]* staged' "$tmp/run.out" \
        || { echo "prefetch smoke: nothing staged" >&2; exit 1; }
    grep -Eq ' [1-9][0-9]* hits,' "$tmp/run.out" \
        || { echo "prefetch smoke: no planned read was served locally" >&2; exit 1; }
    rm -rf "$tmp"
    trap - EXIT
}

# Policy framework end to end: the composed-engine unit targets, the
# eviction-invariant proptests, the sim ablations (LRU eviction must beat
# the paper's no-eviction first-fit on the congested-PFS partial cache,
# clairvoyant must at least match LRU, reuse tracking must win the
# hot-set contention scenario), and a `monarch policy` CLI smoke.
run_policy() {
    echo "==> cargo test -p monarch-core --lib policy targets"
    cargo test -p monarch-core --lib -q policy
    echo "==> cargo test -p monarch-core --test proptests eviction invariants"
    cargo test -p monarch-core --test proptests -q -- \
        eviction_never_selects lru_victim lfu_victim
    echo "==> cargo test -p dlpipe sim policy ablations"
    cargo test -p dlpipe --lib -q -- eviction_policies_beat_first_fit \
        hot_set_contention policy_runs_are_deterministic
    echo "==> monarch policy smoke"
    local tmp
    tmp="$(mktemp -d)"
    # shellcheck disable=SC2064  # expand $tmp now, not at exit
    trap "rm -rf '$tmp'" EXIT
    cargo run -q -p monarch-cli -- gen-dataset \
        --dir "$tmp/pfs" --bytes $((4 << 20)) --samples 128 --seed 7
    cat > "$tmp/cfg.json" <<EOF
{
  "tiers": [
    {"name": "ssd", "backend": {"posix": {"path": "$tmp/ssd"}}, "capacity": 1073741824},
    {"name": "pfs", "backend": {"posix": {"path": "$tmp/pfs"}}}
  ],
  "pool_threads": 4
}
EOF
    cargo run -q -p monarch-cli -- policy \
        --config "$tmp/cfg.json" --policy learned --json > "$tmp/policy.json"
    python3 - "$tmp/policy.json" <<'PY'
import json, sys
p = json.load(open(sys.argv[1]))
assert p["name"] == "admit_all/scored/learned", p
assert p["eviction"] == "scored" and p["scorer"] == "learned", p
assert p["may_evict"] is True, p
PY
    rm -rf "$tmp"
    trap - EXIT
}

# Workload observatory end to end: the focused test target, then a CLI
# smoke run whose JSON report must attribute the measured wall across the
# five buckets (sum within 5%), list hot files, and flag the held-back
# tail as wasted prefetch.
run_report() {
    echo "==> cargo test -p monarch --test report_e2e -q"
    cargo test -p monarch --test report_e2e -q

    echo "==> monarch report smoke run"
    local tmp
    tmp="$(mktemp -d)"
    # shellcheck disable=SC2064  # expand $tmp now, not at exit
    trap "rm -rf '$tmp'" EXIT
    cargo run -q -p monarch-cli -- gen-dataset \
        --dir "$tmp/pfs" --bytes $((8 << 20)) --samples 256 --seed 7
    cat > "$tmp/cfg.json" <<EOF
{
  "tiers": [
    {"name": "ssd", "backend": {"posix": {"path": "$tmp/ssd"}}, "capacity": 1073741824},
    {"name": "pfs", "backend": {"posix": {"path": "$tmp/pfs"}}}
  ],
  "pool_threads": 4
}
EOF
    cargo run -q -p monarch-cli -- report \
        --config "$tmp/cfg.json" --epochs 2 --prefetch 8 --json \
        > "$tmp/report.json"
    python3 - "$tmp/report.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
wall = r["wall_s"]
assert wall > 0, "report smoke: zero wall time"
buckets = r["ledger"]
total = sum(buckets[k] for k in (
    "pfs_bound_s", "copy_lane_saturated_s", "prefetch_lag_s",
    "peer_bound_s", "degraded_fallback_s", "lock_or_queue_s",
    "compute_bound_s"))
assert abs(total - wall) <= 0.05 * wall, \
    f"report smoke: buckets sum {total} vs wall {wall}"
assert r["reads"] > 0, "report smoke: no reads profiled"
assert r["top_hot"], "report smoke: empty hot list"
assert r["wasted_prefetch"], "report smoke: held-back tail not flagged"
PY
    rm -rf "$tmp"
    trap - EXIT
}

# Distributed peer cache end to end: the focused cluster test targets,
# then the cross-crate loopback e2e — two in-process nodes over real TCP,
# peer serving without a second PFS read, graceful PFS degradation when
# the owner's listener dies mid-epoch.
run_cluster() {
    echo "==> cargo test -p monarch-core cluster -q"
    cargo test -p monarch-core cluster -q
    echo "==> cargo test -p monarch --test cluster_e2e -q"
    cargo test -p monarch --test cluster_e2e -q
}

# Tier fault tolerance end to end: the scripted-fault unit targets
# (transient retry, permanent-error quarantine, half-open probe recovery,
# ENOSPC evict-and-retry), the real-tempdir chaos epochs, the
# deterministic sim outage scenario, and a `monarch health` CLI smoke.
run_chaos() {
    echo "==> cargo test -p monarch-core fault/quarantine/probe targets"
    cargo test -p monarch-core --lib -q -- transient_read_fault \
        permanent_read_fault half_open_probe enospc_install \
        flaky_driver quarantined_tier
    echo "==> cargo test -p monarch --test chaos_e2e -q"
    cargo test -p monarch --test chaos_e2e -q
    echo "==> cargo test -p dlpipe sim outage targets"
    cargo test -p dlpipe --lib -q -- ssd_outage no_op_fault_plan
    echo "==> monarch health smoke"
    local tmp
    tmp="$(mktemp -d)"
    # shellcheck disable=SC2064  # expand $tmp now, not at exit
    trap "rm -rf '$tmp'" EXIT
    cargo run -q -p monarch-cli -- gen-dataset \
        --dir "$tmp/pfs" --bytes $((8 << 20)) --samples 256 --seed 7
    cat > "$tmp/cfg.json" <<EOF
{
  "tiers": [
    {"name": "ssd", "backend": {"posix": {"path": "$tmp/ssd"}}, "capacity": 1073741824},
    {"name": "pfs", "backend": {"posix": {"path": "$tmp/pfs"}}}
  ],
  "pool_threads": 4
}
EOF
    cargo run -q -p monarch-cli -- health --config "$tmp/cfg.json" --json \
        > "$tmp/health.json"
    python3 - "$tmp/health.json" <<'PY'
import json, sys
h = json.load(open(sys.argv[1]))
assert h["degraded"] is False, "health smoke: fresh hierarchy degraded"
states = [t["state"] for t in h["tiers"]]
assert states and all(s == "closed" for s in states), \
    f"health smoke: unexpected states {states}"
PY
    rm -rf "$tmp"
    trap - EXIT
}

# Perf regression gate: rerun the committed BENCH_*.json workloads and
# fail on regressions beyond tolerance. sim_epoch is virtual-time and
# deterministic; read_path is wall-clock, so the tool retries and passes
# if any attempt lands within tolerance.
run_perf() {
    echo "==> bench compare --baseline BENCH_sim_epoch.json --tolerance 15%"
    cargo run -q --release -p monarch-bench --bin bench -- compare \
        --baseline BENCH_sim_epoch.json --tolerance 15%
    echo "==> bench compare --baseline BENCH_read_path.json --tolerance 15%"
    cargo run -q --release -p monarch-bench --bin bench -- compare \
        --baseline BENCH_read_path.json --tolerance 15%
}

# Exporter smoke: start `monarch serve` on an ephemeral port against a
# generated dataset, scrape every endpoint, and check the Prometheus text
# carries the gauge/histogram families.
run_serve() {
    echo "==> monarch serve smoke"
    local tmp
    tmp="$(mktemp -d)"
    # shellcheck disable=SC2064  # expand $tmp now, not at exit
    trap "rm -rf '$tmp'; kill \$(cat '$tmp/serve.pid' 2>/dev/null) 2>/dev/null || true" EXIT
    cargo run -q -p monarch-cli -- gen-dataset \
        --dir "$tmp/pfs" --bytes $((8 << 20)) --samples 256 --seed 7
    cat > "$tmp/cfg.json" <<EOF
{
  "tiers": [
    {"name": "ssd", "backend": {"posix": {"path": "$tmp/ssd"}}, "capacity": 1073741824},
    {"name": "pfs", "backend": {"posix": {"path": "$tmp/pfs"}}}
  ],
  "pool_threads": 4
}
EOF
    cargo run -q -p monarch-cli -- serve \
        --config "$tmp/cfg.json" --addr 127.0.0.1:0 --duration 30 \
        > "$tmp/serve.out" &
    echo $! > "$tmp/serve.pid"
    local addr=""
    for _ in $(seq 1 50); do
        addr=$(sed -n 's#^serving .* on http://##p' "$tmp/serve.out")
        [ -n "$addr" ] && break
        sleep 0.2
    done
    [ -n "$addr" ] || { echo "serve smoke: exporter never announced its address" >&2; exit 1; }
    curl -fsS "http://$addr/healthz" | grep -q ok \
        || { echo "serve smoke: /healthz not ok" >&2; exit 1; }
    curl -fsS "http://$addr/metrics" > "$tmp/metrics.out"
    for needle in 'monarch_tier_occupancy_bytes' 'monarch_lane_queued' \
                  'monarch_read_stall_driver_pread_seconds' '# TYPE monarch_tier_reads_total counter'; do
        grep -q "$needle" "$tmp/metrics.out" \
            || { echo "serve smoke: /metrics missing $needle" >&2; exit 1; }
    done
    curl -fsS "http://$addr/snapshot" | python3 -m json.tool > /dev/null \
        || { echo "serve smoke: /snapshot is not valid JSON" >&2; exit 1; }
    curl -fsS "http://$addr/trace" > /dev/null \
        || { echo "serve smoke: /trace failed" >&2; exit 1; }
    kill "$(cat "$tmp/serve.pid")" 2>/dev/null || true
    rm -rf "$tmp"
    trap - EXIT
}

case "$stage" in
    fmt) run_fmt ;;
    clippy) run_clippy ;;
    size) run_size ;;
    test) run_test ;;
    trace) run_trace ;;
    prefetch) run_prefetch ;;
    policy) run_policy ;;
    report) run_report ;;
    cluster) run_cluster ;;
    chaos) run_chaos ;;
    perf) run_perf ;;
    serve) run_serve ;;
    all)
        run_fmt
        run_clippy
        run_size
        run_test
        run_trace
        run_prefetch
        run_policy
        run_report
        run_cluster
        run_chaos
        run_serve
        run_perf
        ;;
    *)
        echo "usage: scripts/check.sh [fmt|clippy|size|test|trace|prefetch|policy|report|cluster|chaos|perf|serve|all]" >&2
        exit 2
        ;;
esac

echo "OK"
