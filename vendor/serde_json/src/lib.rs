//! Offline stand-in for `serde_json`.
//!
//! Parses JSON text into the vendored `serde` crate's [`Value`] tree and
//! renders it back (compact or pretty). Typed entry points `from_str`,
//! `to_string`, and `to_string_pretty` bridge through
//! `serde::Serialize::to_value` / `serde::Deserialize::from_value`.

#![warn(missing_docs)]

use std::fmt;

pub use serde::value::render;
pub use serde::{Map, Value};

/// A JSON parse or conversion failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Parse `s` into any `Deserialize` target (including [`Value`]).
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    Ok(T::from_value(&value)?)
}

/// Compact JSON text for `value`.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(render(&value.to_value(), None))
}

/// Pretty JSON text for `value` (2-space indent, like upstream).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(render(&value.to_value(), Some(2)))
}

/// Convert any `Serialize` type into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

// ---------------------------------------------------------------------------
// Recursive-descent parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v: Value =
            from_str("{\"a\": [1, -2, 3.5, true, null], \"s\": \"x\\ny\", \"o\": {\"k\": \"v\"}}")
                .expect("parse");
        assert_eq!(v["a"][0], 1u64);
        assert_eq!(v["a"][1], -2i64);
        assert_eq!(v["a"][2].as_f64(), Some(3.5));
        assert_eq!(v["a"][3], true);
        assert!(v["a"][4].is_null());
        assert_eq!(v["s"], "x\ny");
        assert_eq!(v["o"]["k"], "v");
    }

    #[test]
    fn roundtrips_through_text() {
        let original = "{\"n\":7,\"list\":[1,2],\"name\":\"m\\\"x\"}";
        let v: Value = from_str(original).expect("parse");
        assert_eq!(to_string(&v).expect("render"), original);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str("\"\\u0041\\ud83d\\ude00\"").expect("parse");
        assert_eq!(v, "A😀");
    }
}
