//! Offline stand-in for the `crossbeam` crate.
//!
//! Vendors only what the workspace uses: `crossbeam::channel::unbounded`,
//! a multi-producer **multi-consumer** channel (std's `mpsc::Receiver` is
//! not cloneable, so this is a small Mutex + Condvar queue instead of a
//! wrapper).

#![warn(missing_docs)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        cv: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (each message is delivered to exactly one
    /// receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The channel is closed: every [`Receiver`] is gone. Carries the
    /// undelivered message back to the caller.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The channel is closed and drained: every [`Sender`] is gone and no
    /// message is queued.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a closed channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, closed channel")
        }
    }

    impl<T> std::error::Error for SendError<T> where T: fmt::Debug {}
    impl std::error::Error for RecvError {}

    /// An unbounded FIFO channel. Every send succeeds while at least one
    /// receiver is alive; `recv` blocks until a message or channel close.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cv: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Queue `msg`; fails only when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.receivers == 0 {
                return Err(SendError(msg));
            }
            q.items.push_back(msg);
            drop(q);
            self.shared.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.senders -= 1;
            if q.senders == 0 {
                drop(q);
                // Unblock receivers waiting for a message that will never come.
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; `Err` once the channel is closed
        /// (no senders) and drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = q.items.pop_front() {
                    return Ok(item);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self.shared.cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Take a message if one is queued right now.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .items
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn work_queue_drains_across_clones() {
        let (tx, rx) = channel::unbounded::<u32>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receivers_gone() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
