//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset the workspace uses — `StdRng`, `SeedableRng`,
//! `Rng::{gen, gen_range}`, `RngCore::{next_u32, next_u64, fill_bytes}` —
//! backed by SplitMix64. The stream differs from upstream `StdRng`
//! (ChaCha12), which is fine here: callers only rely on *determinism*
//! (same seed ⇒ same stream), never on specific values.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Build from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a single `u64` (the only constructor the workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on an empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on an empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on an empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on an empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Uniform `[0, span)` by rejection, avoiding modulo bias.
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A value uniform over `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG: SplitMix64 (differs from upstream's
    /// ChaCha12 stream; callers rely only on seeded determinism).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u8; 8];
            s.copy_from_slice(&seed[..8]);
            Self::seed_from_u64(u64::from_le_bytes(s))
        }

        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0usize..=3);
            assert!(w <= 3);
            let f: f64 = r.gen_range(0.5f64..1.5);
            assert!((0.5..1.5).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
