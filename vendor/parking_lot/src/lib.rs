//! Offline stand-in for the `parking_lot` crate.
//!
//! This build environment has no access to a crates registry, so the
//! workspace vendors the *subset* of the `parking_lot` API it actually
//! uses, implemented over `std::sync`. Semantics match where it matters:
//! `lock()`/`read()`/`write()` return guards directly (no poisoning —
//! a panic while holding a lock simply releases it), and `Condvar` works
//! on `MutexGuard` like the real crate.

#![warn(missing_docs)]

use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, RwLock as StdRwLock};
use std::time::Duration;

/// A mutual-exclusion primitive. Unlike `std::sync::Mutex` there is no
/// poisoning: a panic while the lock is held releases it cleanly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until shared access is acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Block until exclusive access is acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: StdCondvar::new(),
        }
    }

    /// Atomically release the guard's lock and block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(&mut guard.inner, |g| {
            self.inner.wait(g).unwrap_or_else(|e| e.into_inner())
        });
    }

    /// Like [`Condvar::wait`] with a timeout; returns `true` when the wait
    /// timed out rather than being notified.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let mut timed_out = false;
        take_guard(&mut guard.inner, |g| {
            let (g, r) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = r.timed_out();
            g
        });
        timed_out
    }

    /// Wake one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every blocked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Run `f` on the owned `std` guard in place. The closure always returns a
/// live guard, so the slot is never observed empty, but moving through
/// `Option` is what lets `Condvar::wait`'s consuming signature compose
/// with a `&mut` guard.
fn take_guard<'a, T: ?Sized>(
    slot: &mut std::sync::MutexGuard<'a, T>,
    f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
) {
    // SAFETY-free juggling: temporarily replace via ptr-less Option dance.
    replace_with(slot, f);
}

/// Minimal `take_mut`: moves out of `dest`, applies `f`, moves back.
/// Aborts the process if `f` panics (the guard would otherwise be lost),
/// matching the real crate's no-poisoning model closely enough for tests.
fn replace_with<G>(dest: &mut G, f: impl FnOnce(G) -> G) {
    struct Bomb;
    impl Drop for Bomb {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let bomb = Bomb;
        let old = std::ptr::read(dest);
        let new = f(old);
        std::ptr::write(dest, new);
        std::mem::forget(bomb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = 7;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while *g != 7 {
            cv.wait(&mut g);
        }
        drop(g);
        t.join().unwrap();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_allows_parallel_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)));
    }
}
