//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace uses: the [`proptest!`] macro,
//! `prop_assert*` macros, [`prop_oneof!`], `any::<T>()`, range and tuple
//! strategies, and `prop::collection::vec`. Instead of upstream's
//! shrinking test runner, inputs are drawn from a deterministic seeded
//! generator and each case runs the body directly — failures report the
//! assertion message but are not shrunk.
//!
//! Case count defaults to 64 (override with `PROPTEST_CASES` or
//! `ProptestConfig::with_cases`).

#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and the concrete strategies the workspace
    //! needs (ranges, tuples, unions, `Just`).

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree or shrinking: a strategy
    /// just draws a value from the test RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u128).wrapping_sub(start as u128) + 1;
                    start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let frac = rng.next_f64();
            let v = self.start + frac * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.next_f64_inclusive() * (self.end() - self.start())
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (backs [`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "empty prop_oneof!");
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    /// Build a [`Union`]; `vec!` element coercion to `Box<dyn Strategy>`
    /// happens against this signature.
    pub fn union_of<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        Union { options }
    }

    /// Types with a canonical "any value" generator, for [`any`].
    pub trait ArbitraryValue {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    /// Strategy form of [`ArbitraryValue`]; construct with [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()`: a strategy producing arbitrary values of `T`.
    #[must_use]
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Admissible lengths for a collection strategy. Only `Range<usize>`
    /// (and friends) convert into this, which is what lets bare integer
    /// literals in `vec(strat, 0..32)` infer as `usize`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Vectors whose length is drawn from `sizes` and whose elements are
    /// drawn from `element`.
    pub struct VecStrategy<E> {
        element: E,
        sizes: SizeRange,
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.sizes.hi_exclusive - self.sizes.lo) as u64;
            let len = self.sizes.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `element` with a length drawn from
    /// `sizes` (typically a `usize` range).
    pub fn vec<E: Strategy>(element: E, sizes: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            element,
            sizes: sizes.into(),
        }
    }
}

pub mod test_runner {
    //! Runner configuration, the failure type, and the seeded RNG.

    /// Why a test case failed (simplified: always a failed assertion).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// A failure carrying `msg`.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Runner configuration; only the case count is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of inputs to generate per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` inputs per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        /// 64 cases, overridable via the `PROPTEST_CASES` env var.
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Self { cases }
        }
    }

    /// SplitMix64 generator; deterministic so failures reproduce.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed RNG used by [`proptest!`]-generated tests.
        #[must_use]
        pub fn deterministic() -> Self {
            Self {
                state: 0x5DEE_CE66_D901_94C5,
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform draw from `[0, 1]`.
        pub fn next_f64_inclusive(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` namespace (`prop::collection::vec`).
        pub use crate::collection;
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a regular test that draws inputs from a deterministic RNG for
/// the configured number of cases. Attributes written on the fn
/// (including `#[test]` and doc comments) pass through.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {case} failed: {e}");
                    }
                }
            }
        )*
    };
}

/// Assert inside a proptest body; failure aborts the case with an error
/// instead of unwinding mid-generator.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union_of(vec![
            $(::std::boxed::Box::new($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0.0f64..=1.0, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
            let _ = b;
        }

        #[test]
        fn vec_lengths_respect_sizes(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_yields_each_arm(x in prop_oneof![Just(0u64), 10u64..12]) {
            prop_assert!(x == 0 || x == 10 || x == 11);
        }
    }
}
