//! Offline stand-in for `criterion`.
//!
//! Keeps the `criterion_group!`/`criterion_main!`/`benchmark_group` API
//! surface this workspace uses, backed by a simple wall-clock sampler:
//! each benchmark is calibrated so one sample takes roughly 200 µs, then
//! `sample_size` samples are collected and the median / p95 per
//! iteration reported. Results accumulate on the [`Criterion`] value so
//! snapshot tooling can read them after running a group
//! ([`Criterion::results`]).

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// How a benchmark's work scales per iteration, for derived rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; only one variant is
/// used in this workspace and the hint is ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A benchmark label of the form `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter`, with the parameter rendered via `Display`.
    pub fn new(function: &str, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// One finished benchmark: per-iteration timings in nanoseconds.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name (first `benchmark_group` argument).
    pub group: String,
    /// Benchmark label within the group.
    pub label: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// 95th-percentile nanoseconds per iteration.
    pub p95_ns: f64,
    /// Number of samples the percentiles were computed from.
    pub samples: usize,
    /// Declared per-iteration throughput, if any.
    pub throughput: Option<Throughput>,
}

/// The benchmark harness: collects [`BenchResult`]s as groups run.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    results: Vec<BenchResult>,
    quiet: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            results: Vec::new(),
            quiet: false,
        }
    }
}

impl Criterion {
    /// Accept (and ignore) harness CLI arguments such as `--bench`.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Set the default number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Suppress per-benchmark stdout lines (snapshot mode).
    #[must_use]
    pub fn quiet(mut self) -> Self {
        self.quiet = true;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Print a closing line; kept for `criterion_main!` compatibility.
    pub fn final_summary(&self) {
        if !self.quiet {
            println!("completed {} benchmarks", self.results.len());
        }
    }

    /// All results recorded so far, in execution order.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A group of benchmarks sharing a name, throughput, and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Run `f` as the benchmark `label`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher {
            sample_target: samples,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        self.record(label.to_string(), &b);
    }

    /// Run `f` with `input` as the benchmark identified by `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher {
            sample_target: samples,
            samples_ns: Vec::new(),
        };
        f(&mut b, input);
        self.record(id.id, &b);
    }

    /// Close the group (no-op beyond upstream API compatibility).
    pub fn finish(self) {}

    fn record(&mut self, label: String, b: &Bencher) {
        let mut sorted = b.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
        let median = percentile(&sorted, 0.50);
        let p95 = percentile(&sorted, 0.95);
        if !self.criterion.quiet {
            println!(
                "{}/{}: median {:.1} ns/iter, p95 {:.1} ns/iter ({} samples)",
                self.name,
                label,
                median,
                p95,
                sorted.len()
            );
        }
        self.criterion.results.push(BenchResult {
            group: self.name.clone(),
            label,
            median_ns: median,
            p95_ns: p95,
            samples: sorted.len(),
            throughput: self.throughput,
        });
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Per-sample minimum work, so fast routines aren't timed at clock
/// resolution.
const TARGET_SAMPLE: Duration = Duration::from_micros(200);

/// Timing context handed to benchmark closures.
pub struct Bencher {
    sample_target: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, collecting the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fill one sample window?
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(25));
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.samples_ns.clear();
        for _ in 0..self.sample_target {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let input = setup();
        let t0 = Instant::now();
        std::hint::black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(25));
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        self.samples_ns.clear();
        for _ in 0..self.sample_target {
            let mut busy = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                std::hint::black_box(routine(input));
                busy += t.elapsed();
            }
            self.samples_ns.push(busy.as_nanos() as f64 / iters as f64);
        }
    }
}

/// Bundle benchmark functions into one group function taking
/// `&mut Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Run every benchmark in this group.
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `fn main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_results_with_throughput() {
        let mut c = Criterion::default().sample_size(3).quiet();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(64));
        g.bench_function("busy", |b| {
            b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()))
        });
        g.bench_with_input(BenchmarkId::new("param", "x"), &7u64, |b, n| {
            b.iter_batched(|| *n, |v| v * 2, BatchSize::SmallInput);
        });
        g.finish();
        let results = c.results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].label, "busy");
        assert_eq!(results[1].label, "param/x");
        assert!(results[0].median_ns > 0.0);
        assert!(results[0].p95_ns >= results[0].median_ns);
        assert_eq!(results[0].throughput, Some(Throughput::Bytes(64)));
    }
}
