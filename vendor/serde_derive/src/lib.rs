//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` without
//! `syn`/`quote`: the input item is parsed with a small token walker and
//! the impl is emitted as a source string. Supports exactly the shapes
//! this workspace uses — non-generic named-field structs, one-field
//! tuple (newtype) structs, and enums with unit / newtype / struct
//! variants — plus the attribute subset `rename_all = "snake_case"`,
//! `tag = "..."`, `transparent`, `default`, `default = "fn"`, `flatten`,
//! and `skip_serializing_if = "fn"`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (value-tree flavor) for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_serialize(&c)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` (value-tree flavor) for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_deserialize(&c)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Container {
    name: String,
    rename_all: bool, // snake_case is the only convention used
    tag: Option<String>,
    transparent: bool,
    data: Data,
}

enum Data {
    /// Named-field struct.
    Struct(Vec<Field>),
    /// One-field tuple struct (serialized as its inner value).
    Newtype,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// `Some(None)` = `#[serde(default)]`, `Some(Some(path))` = `default = "path"`.
    default: Option<Option<String>>,
    flatten: bool,
    skip_if: Option<String>,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Token walking
// ---------------------------------------------------------------------------

/// Serde attribute arguments collected off `#[serde(...)]` groups: bare
/// flags (`default`) and `key = "value"` pairs.
#[derive(Default)]
struct SerdeArgs {
    items: Vec<(String, Option<String>)>,
}

impl SerdeArgs {
    fn flag(&self, name: &str) -> bool {
        self.items.iter().any(|(k, v)| k == name && v.is_none())
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.items
            .iter()
            .find_map(|(k, v)| (k == name).then_some(v.as_deref()).flatten())
    }

    /// `default` appears either bare or with a value.
    fn default_spec(&self) -> Option<Option<String>> {
        self.items
            .iter()
            .find(|(k, _)| k == "default")
            .map(|(_, v)| v.clone())
    }
}

/// Consume leading `#[...]` attributes, folding `serde(...)` contents into
/// one [`SerdeArgs`]; every other attribute (docs, `derive`, `default`) is
/// skipped. Returns the index of the first non-attribute token.
fn take_attrs(tokens: &[TokenTree], mut i: usize, args: &mut SerdeArgs) -> usize {
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let TokenTree::Group(g) = &tokens[i + 1] else {
                    panic!("malformed attribute");
                };
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(list)) = inner.get(1) {
                            parse_serde_args(list.stream(), args);
                        }
                    }
                }
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Parse `a, b = "c", d = "e"` inside a `serde(...)` group.
fn parse_serde_args(stream: TokenStream, args: &mut SerdeArgs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        let TokenTree::Ident(key) = &tokens[i] else {
            panic!(
                "unsupported serde attribute shape: {:?}",
                tokens[i].to_string()
            );
        };
        let key = key.to_string();
        i += 1;
        let mut value = None;
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                let TokenTree::Literal(lit) = &tokens[i + 1] else {
                    panic!("serde attribute `{key}` expects a string value");
                };
                value = Some(strip_quotes(&lit.to_string()));
                i += 2;
            }
        }
        args.items.push((key, value));
        // Optional comma.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_container(input: TokenStream) -> Container {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut args = SerdeArgs::default();
    let mut i = take_attrs(&tokens, 0, &mut args);
    i = skip_vis(&tokens, i);
    let TokenTree::Ident(kw) = &tokens[i] else {
        panic!("expected `struct` or `enum`");
    };
    let kw = kw.to_string();
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("expected item name");
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("the vendored serde derive does not support generic types ({name})");
        }
    }
    let rename_all = match args.value("rename_all") {
        None => false,
        Some("snake_case") => true,
        Some(other) => panic!("unsupported rename_all convention `{other}`"),
    };
    let tag = args.value("tag").map(str::to_string);
    let transparent = args.flag("transparent");
    let data = match (kw.as_str(), &tokens[i]) {
        ("struct", TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Data::Struct(parse_fields(g.stream()))
        }
        ("struct", TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Data::Newtype,
        ("enum", TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Data::Enum(parse_variants(g.stream()))
        }
        _ => panic!("unsupported item shape for {name}"),
    };
    Container {
        name,
        rename_all,
        tag,
        transparent,
        data,
    }
}

/// Parse named fields: `attrs vis name : Type ,` repeated. Types are
/// skipped entirely — codegen infers them from field position.
fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut args = SerdeArgs::default();
        i = take_attrs(&tokens, i, &mut args);
        i = skip_vis(&tokens, i);
        let TokenTree::Ident(fname) = &tokens[i] else {
            panic!("expected field name, got {:?}", tokens[i].to_string());
        };
        let fname = fname.to_string();
        i += 1;
        // Skip `:` then the type tokens up to a top-level comma. Generic
        // argument lists nest `<`/`>` as plain puncts, so track depth.
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "expected `:` after field {fname}"
        );
        i += 1;
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name: fname,
            default: args.default_spec(),
            flatten: args.flag("flatten"),
            skip_if: args.value("skip_serializing_if").map(str::to_string),
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut args = SerdeArgs::default();
        i = take_attrs(&tokens, i, &mut args);
        let TokenTree::Ident(vname) = &tokens[i] else {
            panic!("expected variant name, got {:?}", tokens[i].to_string());
        };
        let vname = vname.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Newtype
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name: vname, kind });
    }
    variants
}

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.data {
        Data::Newtype => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::Struct(fields) => {
            if c.transparent {
                assert_eq!(fields.len(), 1, "transparent struct must have one field");
                format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
            } else {
                let mut b = String::from("let mut obj = ::serde::Map::new();\n");
                for f in fields {
                    b.push_str(&ser_field(&format!("self.{}", f.name), f));
                }
                b.push_str("::serde::Value::Object(obj)");
                b
            }
        }
        Data::Enum(variants) => gen_serialize_enum(c, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

/// One field's contribution to the surrounding `obj` map. `access` is the
/// expression reaching the field value (`self.f` or a match binding).
fn ser_field(access: &str, f: &Field) -> String {
    let key = &f.name;
    if f.flatten {
        return format!(
            "match ::serde::Serialize::to_value(&{access}) {{\n\
                 ::serde::Value::Object(m) => {{ for (k, v) in &m {{ obj.insert(k.clone(), v.clone()); }} }}\n\
                 v => {{ obj.insert(\"{key}\".to_string(), v); }}\n\
             }}\n"
        );
    }
    let insert =
        format!("obj.insert(\"{key}\".to_string(), ::serde::Serialize::to_value(&{access}));\n");
    match &f.skip_if {
        Some(path) => format!("if !{path}(&{access}) {{ {insert} }}\n"),
        None => insert,
    }
}

fn variant_wire_name(c: &Container, v: &Variant) -> String {
    if c.rename_all {
        snake_case(&v.name)
    } else {
        v.name.clone()
    }
}

fn gen_serialize_enum(c: &Container, variants: &[Variant]) -> String {
    let name = &c.name;
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        let wire = variant_wire_name(c, v);
        let arm = match (&v.kind, &c.tag) {
            (VariantKind::Unit, None) => format!(
                "{name}::{vname} => ::serde::Value::String(\"{wire}\".to_string()),\n"
            ),
            (VariantKind::Unit, Some(tag)) => format!(
                "{name}::{vname} => {{\n\
                     let mut obj = ::serde::Map::new();\n\
                     obj.insert(\"{tag}\".to_string(), ::serde::Value::String(\"{wire}\".to_string()));\n\
                     ::serde::Value::Object(obj)\n\
                 }}\n"
            ),
            (VariantKind::Newtype, None) => format!(
                "{name}::{vname}(inner) => {{\n\
                     let mut obj = ::serde::Map::new();\n\
                     obj.insert(\"{wire}\".to_string(), ::serde::Serialize::to_value(inner));\n\
                     ::serde::Value::Object(obj)\n\
                 }}\n"
            ),
            (VariantKind::Newtype, Some(_)) => {
                panic!("internally tagged newtype variants are not supported ({name}::{vname})")
            }
            (VariantKind::Struct(fields), tag) => {
                let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let bind_list = binds.join(", ");
                let mut body = String::from("let mut obj = ::serde::Map::new();\n");
                if let Some(tag) = tag {
                    body.push_str(&format!(
                        "obj.insert(\"{tag}\".to_string(), ::serde::Value::String(\"{wire}\".to_string()));\n"
                    ));
                }
                for f in fields {
                    body.push_str(&ser_field(&format!("(*{})", f.name), f));
                }
                if tag.is_some() {
                    body.push_str("::serde::Value::Object(obj)\n");
                } else {
                    body.push_str(&format!(
                        "let mut outer = ::serde::Map::new();\n\
                         outer.insert(\"{wire}\".to_string(), ::serde::Value::Object(obj));\n\
                         ::serde::Value::Object(outer)\n"
                    ));
                }
                format!("{name}::{vname} {{ {bind_list} }} => {{\n{body}}}\n")
            }
        };
        arms.push_str(&arm);
    }
    format!("match self {{\n{arms}}}")
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.data {
        Data::Newtype => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Data::Struct(fields) => {
            if c.transparent {
                assert_eq!(fields.len(), 1, "transparent struct must have one field");
                let f = &fields[0].name;
                format!(
                    "::std::result::Result::Ok({name} {{ {f}: ::serde::Deserialize::from_value(v)? }})"
                )
            } else {
                let mut b = format!(
                    "let obj = v.as_object().ok_or_else(|| ::serde::de::Error::custom(\
                         \"expected an object for {name}\"))?;\n\
                     ::std::result::Result::Ok({name} {{\n"
                );
                for f in fields {
                    b.push_str(&format!("{}: {},\n", f.name, de_field_expr("v", f)));
                }
                b.push_str("})");
                b
            }
        }
        Data::Enum(variants) => gen_deserialize_enum(c, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Expression producing one struct field's value. Expects `obj` (the
/// surrounding map) in scope; `whole` names the full `&Value` for
/// `flatten` fields.
fn de_field_expr(whole: &str, f: &Field) -> String {
    let key = &f.name;
    if f.flatten {
        return format!("::serde::Deserialize::from_value({whole})?");
    }
    let missing = match &f.default {
        Some(None) => "::std::default::Default::default()".to_string(),
        Some(Some(path)) => format!("{path}()"),
        // No default: types that accept null (Option) fall back to it;
        // everything else reports the missing field.
        None => format!(
            "::serde::Deserialize::from_value(&::serde::Value::Null)\
                 .map_err(|_| ::serde::de::Error::missing_field(\"{key}\"))?"
        ),
    };
    format!(
        "match obj.get(\"{key}\") {{\n\
             ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
             ::std::option::Option::None => {missing},\n\
         }}"
    )
}

fn gen_deserialize_enum(c: &Container, variants: &[Variant]) -> String {
    let name = &c.name;
    if let Some(tag) = &c.tag {
        // Internally tagged: the object carries the variant in `tag`.
        let mut arms = String::new();
        for v in variants {
            let vname = &v.name;
            let wire = variant_wire_name(c, v);
            match &v.kind {
                VariantKind::Unit => {
                    arms.push_str(&format!(
                        "\"{wire}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    ));
                }
                VariantKind::Struct(fields) => {
                    let mut fexprs = String::new();
                    for f in fields {
                        fexprs.push_str(&format!("{}: {},\n", f.name, de_field_expr("v", f)));
                    }
                    arms.push_str(&format!(
                        "\"{wire}\" => ::std::result::Result::Ok({name}::{vname} {{\n{fexprs}}}),\n"
                    ));
                }
                VariantKind::Newtype => {
                    panic!("internally tagged newtype variants are not supported ({name}::{vname})")
                }
            }
        }
        return format!(
            "let obj = v.as_object().ok_or_else(|| ::serde::de::Error::custom(\
                 \"expected a tagged object for {name}\"))?;\n\
             let tag = obj.get(\"{tag}\").and_then(::serde::Value::as_str).ok_or_else(|| \
                 ::serde::de::Error::missing_field(\"{tag}\"))?;\n\
             match tag {{\n{arms}\
                 other => ::std::result::Result::Err(::serde::de::Error::unknown_variant(other, \"{name}\")),\n\
             }}"
        );
    }
    // Externally tagged: unit variants are strings; data variants are
    // single-key objects.
    let mut unit_arms = String::new();
    let mut keyed_arms = String::new();
    for v in variants {
        let vname = &v.name;
        let wire = variant_wire_name(c, v);
        match &v.kind {
            VariantKind::Unit => unit_arms.push_str(&format!(
                "\"{wire}\" => ::std::result::Result::Ok({name}::{vname}),\n"
            )),
            VariantKind::Newtype => keyed_arms.push_str(&format!(
                "\"{wire}\" => ::std::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_value(inner)?)),\n"
            )),
            VariantKind::Struct(fields) => {
                let mut fexprs = String::new();
                for f in fields {
                    fexprs.push_str(&format!("{}: {},\n", f.name, de_field_expr("inner", f)));
                }
                keyed_arms.push_str(&format!(
                    "\"{wire}\" => {{\n\
                         let obj = inner.as_object().ok_or_else(|| ::serde::de::Error::custom(\
                             \"expected an object for {name}::{vname}\"))?;\n\
                         ::std::result::Result::Ok({name}::{vname} {{\n{fexprs}}})\n\
                     }}\n"
                ));
            }
        }
    }
    format!(
        "match v {{\n\
             ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::de::Error::unknown_variant(other, \"{name}\")),\n\
             }},\n\
             ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (k, inner) = m.iter().next().expect(\"len checked\");\n\
                 match k.as_str() {{\n{keyed_arms}\
                     other => ::std::result::Result::Err(::serde::de::Error::unknown_variant(other, \"{name}\")),\n\
                 }}\n\
             }}\n\
             _ => ::std::result::Result::Err(::serde::de::Error::custom(\
                 \"expected a string or single-key object for {name}\")),\n\
         }}"
    )
}
