//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! a miniature serde: instead of upstream's streaming
//! `Serializer`/`Deserializer` visitors, everything funnels through one
//! in-memory [`Value`] tree ([`Serialize::to_value`] /
//! [`Deserialize::from_value`]). The derive macros in `serde_derive`
//! generate impls against these traits and honor the subset of
//! `#[serde(...)]` attributes this workspace uses (`rename_all`, `tag`,
//! `transparent`, `default`, `default = "fn"`, `flatten`,
//! `skip_serializing_if`). `serde_json` renders/parses the same tree.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

pub mod de;
pub mod value;

pub use value::{Map, Value};

/// Types convertible into the JSON-like [`Value`] tree.
pub trait Serialize {
    /// Build the value-tree representation.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse from a value tree. Missing struct fields are presented as
    /// [`Value::Null`]; only types that accept null (e.g. `Option`)
    /// tolerate that.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

// --- Serialize impls for the primitives the workspace serializes --------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// --- Deserialize impls ---------------------------------------------------

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| de::Error::custom(format!(
                        "expected {}, got {}", stringify!($t), v.kind()
                    )))?;
                <$t>::try_from(n)
                    .map_err(|_| de::Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| de::Error::custom(format!(
                        "expected {}, got {}", stringify!($t), v.kind()
                    )))?;
                <$t>::try_from(n)
                    .map_err(|_| de::Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_f64()
            .ok_or_else(|| de::Error::custom(format!("expected f64, got {}", v.kind())))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_bool()
            .ok_or_else(|| de::Error::custom(format!("expected bool, got {}", v.kind())))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| de::Error::custom(format!("expected string, got {}", v.kind())))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| de::Error::custom(format!("expected array, got {}", v.kind())))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v.as_array() {
            Some(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(de::Error::custom("expected a 2-element array")),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v.as_array() {
            Some(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => Err(de::Error::custom("expected a 3-element array")),
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}
