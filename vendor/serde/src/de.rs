//! Deserialization error type.

use std::fmt;

/// A deserialization failure: a human-readable message, optionally
/// annotated with the field path where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error carrying `msg`.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }

    /// A required field was absent from the input object.
    pub fn missing_field(name: &str) -> Self {
        Self {
            msg: format!("missing field `{name}`"),
        }
    }

    /// An enum tag did not name a known variant.
    pub fn unknown_variant(tag: &str, ty: &str) -> Self {
        Self {
            msg: format!("unknown variant `{tag}` for {ty}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
