//! The in-memory JSON-like value tree shared by `serde` and `serde_json`.

use std::fmt;
use std::ops::Index;

/// An ordered string-keyed map. Upstream `serde_json` sorts keys in its
/// default `Map`; this one preserves insertion order, which matches what
/// upstream's *streaming* struct serializer emits (declaration order) —
/// the order the workspace's golden tests expect.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Value for `key`, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether `key` is present.
    #[must_use]
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Insert (or replace) `key`.
    pub fn insert(&mut self, key: String, value: Value) {
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, slot)) => *slot = value,
            None => self.entries.push((key, value)),
        }
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl From<Vec<(String, Value)>> for Map {
    fn from(entries: Vec<(String, Value)>) -> Self {
        let mut m = Map::new();
        for (k, v) in entries {
            m.insert(k, v);
        }
        m
    }
}

impl Index<&str> for Map {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&Value::Null)
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON-like value.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer (positive integers parse as [`Value::UInt`]).
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object (insertion-ordered).
    Object(Map),
}

impl Value {
    /// Short kind name for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The value as `u64` when it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as `i64` when it is an in-range integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as `f64` when it is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            _ => None,
        }
    }

    /// The value as `&str` when it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` when it is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The backing vector when the value is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The backing map when the value is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member by key (`None` for non-objects or missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Whether the value is a string.
    #[must_use]
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// Whether the value is a non-negative integer.
    #[must_use]
    pub fn is_u64(&self) -> bool {
        self.as_u64().is_some()
    }

    /// Whether the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// `v["key"]` indexing; missing keys and non-objects yield `Null`, like
/// upstream `serde_json`.
impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&Value::Null)
    }
}

/// `v[0]` indexing; out-of-range and non-arrays yield `Null`.
impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

/// Unsuffixed integer literals in assertions (`v["pid"] == 1`) land here.
impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(i64::from(*other))
    }
}

impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        self.as_u64().map(|n| n as usize) == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering (matches `serde_json::Value`'s `Display`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&render(self, None))
    }
}

/// Render `v` as JSON text. `indent = None` is compact; `Some(width)`
/// pretty-prints with that many spaces per level.
#[must_use]
pub fn render(v: &Value, indent: Option<usize>) -> String {
    let mut out = String::new();
    write_value(&mut out, v, indent, 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_f64(out, *x),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

/// Non-finite floats render as `null` (upstream `serde_json` behavior);
/// integral floats keep a `.0` suffix so the number reads back as float.
fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_accessors() {
        let v = Value::Object(Map::from(vec![
            ("a".to_string(), Value::UInt(3)),
            (
                "b".to_string(),
                Value::Array(vec![Value::String("x".into())]),
            ),
        ]));
        assert_eq!(v["a"].as_u64(), Some(3));
        assert_eq!(v["b"][0], "x");
        assert!(v["missing"].is_null());
        assert_eq!(v["a"], 3u64);
    }

    #[test]
    fn rendering_compact_and_pretty() {
        let v = Value::Object(Map::from(vec![
            ("n".to_string(), Value::Float(2.0)),
            ("s".to_string(), Value::String("a\"b".into())),
        ]));
        assert_eq!(render(&v, None), "{\"n\":2.0,\"s\":\"a\\\"b\"}");
        assert_eq!(
            render(&v, Some(2)),
            "{\n  \"n\": 2.0,\n  \"s\": \"a\\\"b\"\n}"
        );
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(render(&Value::Float(f64::NAN), None), "null");
        assert_eq!(render(&Value::Float(f64::INFINITY), None), "null");
    }
}
